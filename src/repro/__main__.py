"""Command-line entry point: ``python -m repro [experiment ...]``.

Runs experiment drivers by name and prints their artifacts; with no
arguments, lists what is available. Scale comes from ``REPRO_SCALE``.
"""

from __future__ import annotations

import importlib
import sys

EXPERIMENTS = (
    "fig1",
    "table1",
    "fig2",
    "sec33",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "sec43",
    "table2",
    "table3",
    "sec5live",
    "stability",
)


def main(argv: list) -> int:
    """Dispatch experiment names from the command line."""
    names = [name for name in argv if not name.startswith("-")]
    if not names or "--help" in argv:
        print(__doc__)
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("\nexample: REPRO_SCALE=0.2 python -m repro fig6 sec43")
        return 0
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    from repro.experiments.context import shared_context

    ctx = shared_context()
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        print("=" * 72)
        print(module.render(module.run(ctx)))
    return 0


def console_main() -> None:
    """Console-script entry point (`repro-experiments`)."""
    raise SystemExit(main(sys.argv[1:]))


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
