"""Filter-list revision histories.

§3 of the paper is entirely about how lists evolve: rules added/modified
per revision, rule-type mix over time, and when each targeted domain first
appears. §4 needs ``version_at`` to replay the *contemporaneous* list
against each archived snapshot.

Real revision churn is tiny compared to list size (the paper: ~4 rules/day
for AAK against thousands of rules), so this module is built around
incremental state rather than per-revision re-parsing:

- revisions can be **delta-backed** — :meth:`FilterListHistory.add_revision`
  accepts a :class:`RevisionDelta` and only materializes the full parsed
  document lazily, by applying the delta chain to the nearest concrete base;
- the §3 series (:meth:`rule_type_series`, :meth:`total_rules_series`,
  :meth:`domain_first_appearance`) are **streaming folds** over per-revision
  line changes — a running ``Counter[RuleType]`` and first-seen-domain map
  updated in O(churn) per delta-backed revision — memoized per history and
  pinned equal to the retained ``*_full_scan`` reference implementations;
- every rule line goes through the process-global
  :class:`~repro.filterlist.parser.ParsedRuleCache`, so each distinct line
  in the whole history is parsed and classified exactly once.
"""

from __future__ import annotations

import bisect
from collections import Counter
from dataclasses import dataclass, field
from datetime import date
from typing import Dict, Iterator, List, Optional, Tuple

from .classify import RuleType, count_rule_types, snapshot_type_counts
from .parser import (
    FilterList,
    ParsedRule,
    count_history,
    get_rule_cache,
    parse_filter_list,
)


@dataclass
class RevisionDelta:
    """Line-level difference between two consecutive revisions.

    Applying a delta removes **all** occurrences of each ``removed`` line,
    then appends the ``added`` lines in order (unparseable added lines are
    recorded as errors and skipped, as in full-text parsing).
    """

    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)

    @property
    def churn(self) -> int:
        """Rules added or modified (a modify shows as one add + one remove).

        The paper reports "adds or modifies N rules per revision"; we count
        additions, which includes the new form of every modified rule.
        """
        return len(self.added)


class Revision:
    """One dated version of a filter list.

    Either **concrete** (constructed with a parsed ``filter_list``) or
    **delta-backed** (constructed with a ``delta`` against a ``previous``
    revision); a delta-backed revision materializes its full document on
    first access to :attr:`filter_list` and caches the result.
    """

    __slots__ = ("date", "_filter_list", "_delta", "_previous")

    def __init__(
        self,
        date: "date",
        filter_list: Optional[FilterList] = None,
        *,
        delta: Optional[RevisionDelta] = None,
        previous: Optional["Revision"] = None,
    ) -> None:
        if (filter_list is None) == (delta is None):
            raise ValueError("a revision needs exactly one of filter_list or delta")
        if delta is not None and previous is None:
            raise ValueError("a delta-backed revision needs a previous revision")
        self.date = date
        self._filter_list = filter_list
        self._delta = delta
        self._previous = previous

    @property
    def filter_list(self) -> FilterList:
        """The revision's parsed document (materialized on first access)."""
        if self._filter_list is None:
            self._materialize()
        return self._filter_list

    def _materialize(self) -> None:
        # Walk back (iteratively — chains can be long) to the nearest
        # concrete revision, then apply the deltas forward, caching the
        # expanded document on every revision along the way.
        chain: List[Revision] = []
        node: Revision = self
        while node._filter_list is None:
            chain.append(node)
            node = node._previous
        base = node._filter_list
        cache = get_rule_cache()
        hits_before, misses_before = cache.hits, cache.misses
        for revision in reversed(chain):
            delta = revision._delta
            removed = set(delta.removed)
            rules = [pr for pr in base.rules if pr.rule.raw not in removed]
            errors = list(base.errors)
            next_line = (rules[-1].line_number + 1) if rules else 1
            for line in delta.added:
                entry = cache.lookup(line)
                if entry.rule is None:
                    errors.append(f"line {next_line}: {entry.error}")
                else:
                    rules.append(
                        ParsedRule(rule=entry.rule, line_number=next_line, section="")
                    )
                next_line += 1
            base = FilterList(
                name=base.name,
                rules=rules,
                metadata=dict(base.metadata),
                errors=errors,
            )
            revision._filter_list = base
        cache.flush_counts(hits_before, misses_before)
        count_history("revisions_materialized", len(chain))

    @property
    def rules(self):
        """The revision's rule objects."""
        return [parsed.rule for parsed in self.filter_list.rules]

    def rule_lines(self) -> List[str]:
        """The revision's raw rule lines."""
        return self.filter_list.rule_lines()


class FilterListHistory:
    """An ordered sequence of :class:`Revision` objects for one list."""

    def __init__(self, name: str, revisions: Optional[List[Revision]] = None) -> None:
        self.name = name
        self._revisions: List[Revision] = sorted(revisions or [], key=lambda r: r.date)
        #: memoized streaming-fold results, cleared by :meth:`add_revision`
        self._memo: Dict[str, object] = {}

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._revisions)

    def __iter__(self) -> Iterator[Revision]:
        return iter(self._revisions)

    def __getitem__(self, index: int) -> Revision:
        return self._revisions[index]

    @property
    def revisions(self) -> List[Revision]:
        """All revisions, oldest first."""
        return list(self._revisions)

    def add_revision(self, revision_date: date, text_or_list) -> Revision:
        """Append a revision (text is parsed; revisions stay date-ordered).

        Accepts full list text, a pre-parsed :class:`FilterList`, or a
        :class:`RevisionDelta` against the current latest revision. A delta
        revision must not predate the latest one (there is nothing earlier
        to apply it to) and stays delta-backed until someone asks for its
        full document.
        """
        if isinstance(text_or_list, RevisionDelta):
            latest = self.latest()
            if latest is None:
                raise ValueError("cannot add a delta revision to an empty history")
            if revision_date < latest.date:
                raise ValueError(
                    f"delta revision {revision_date} predates latest {latest.date}"
                )
            revision = Revision(revision_date, delta=text_or_list, previous=latest)
            self._revisions.append(revision)
            self._memo.clear()
            return revision
        if isinstance(text_or_list, FilterList):
            filter_list = text_or_list
        else:
            filter_list = parse_filter_list(text_or_list, name=self.name)
        revision = Revision(revision_date, filter_list)
        bisect.insort(self._revisions, revision, key=lambda r: r.date)
        self._memo.clear()
        return revision

    # -- queries ---------------------------------------------------------------

    @property
    def first_date(self) -> Optional[date]:
        """Date of the oldest revision, if any."""
        return self._revisions[0].date if self._revisions else None

    @property
    def last_date(self) -> Optional[date]:
        """Date of the newest revision, if any."""
        return self._revisions[-1].date if self._revisions else None

    def version_at(self, when: date) -> Optional[Revision]:
        """Latest revision dated on or before ``when`` (contemporaneous list)."""
        dates = [revision.date for revision in self._revisions]
        index = bisect.bisect_right(dates, when) - 1
        return self._revisions[index] if index >= 0 else None

    def latest(self) -> Optional[Revision]:
        """The newest revision, if any."""
        return self._revisions[-1] if self._revisions else None

    def index_of_date(self, when: date) -> Optional[int]:
        """Index of the (first) revision dated exactly ``when``, if any."""
        dates = [revision.date for revision in self._revisions]
        index = bisect.bisect_left(dates, when)
        if index < len(dates) and dates[index] == when:
            return index
        return None

    def predecessor(self, revision: Revision) -> Optional[Revision]:
        """The revision immediately before ``revision`` in this history."""
        index = self.index_of_date(revision.date)
        if index is None or index == 0:
            return None
        return self._revisions[index - 1]

    def delta(self, index: int) -> RevisionDelta:
        """Difference between revision ``index`` and its predecessor.

        This is the *set-based* view (distinct parseable lines that became
        present/absent), which is what the §3.2 churn rates are defined
        over; it is not necessarily the stored :class:`RevisionDelta` a
        delta-backed revision was built from.
        """
        current = set(self._revisions[index].rule_lines())
        previous = set(self._revisions[index - 1].rule_lines()) if index > 0 else set()
        return RevisionDelta(
            added=sorted(current - previous), removed=sorted(previous - current)
        )

    def network_rule_delta(self, index: int) -> Tuple[list, list]:
        """``(added, removed)`` *network* rule objects for revision ``index``.

        Resolves :meth:`delta`'s raw lines back to the parsed
        :class:`~repro.filterlist.rules.NetworkRule` objects of the two
        revisions, so the §4 replay can derive revision ``index``'s matcher
        from revision ``index - 1``'s by editing only the delta instead of
        re-scanning the full rule set. Element-rule lines are skipped.
        """
        delta = self.delta(index)
        current = {
            rule.raw: rule for rule in self._revisions[index].filter_list.network_rules
        }
        previous = (
            {
                rule.raw: rule
                for rule in self._revisions[index - 1].filter_list.network_rules
            }
            if index > 0
            else {}
        )
        added = [current[line] for line in delta.added if line in current]
        removed = [previous[line] for line in delta.removed if line in previous]
        return added, removed

    # -- the streaming fold ---------------------------------------------------

    def _fold(self) -> Dict[str, object]:
        """One pass over the history computing every §3 series incrementally.

        Maintains a running multiset of present rule lines, a running
        ``Counter[RuleType]``, and a first-seen-domain map. A delta-backed
        revision whose stored predecessor is also its sorted-order
        predecessor is folded straight from its :class:`RevisionDelta` in
        O(churn); any other revision (full-text, out-of-order insertions)
        falls back to a multiset diff of its parsed lines. Results are
        memoized until the next :meth:`add_revision`.
        """
        if "fold" in self._memo:
            return self._memo["fold"]
        cache = get_rule_cache()
        hits_before, misses_before = cache.hits, cache.misses
        state: Counter = Counter()  # parseable rule line -> multiplicity
        type_counts: Counter = Counter()  # RuleType -> running count
        total = 0
        first_seen: Dict[str, date] = {}
        type_series: List[Tuple[date, Dict[RuleType, int]]] = []
        total_series: List[Tuple[date, int]] = []
        churn_series: List[int] = []  # newly-present distinct lines, rev 1..n-1
        delta_folds = 0
        previous_revision: Optional[Revision] = None
        for revision in self._revisions:
            changes: List[Tuple[str, int]] = []  # (line, multiplicity delta)
            newly_present = 0
            if (
                revision._delta is not None
                and revision._previous is previous_revision
                and previous_revision is not None
            ):
                delta_folds += 1
                stored = revision._delta
                for line in set(stored.removed):
                    count = state.get(line, 0)
                    if count:
                        changes.append((line, -count))
                counted: set = set()
                for line in stored.added:
                    if cache.lookup(line).rule is None:
                        continue
                    changes.append((line, 1))
                    if line not in state and line not in counted:
                        newly_present += 1
                        counted.add(line)
            else:
                current = Counter(revision.rule_lines())
                for line, count in current.items():
                    diff = count - state.get(line, 0)
                    if diff:
                        changes.append((line, diff))
                    if line not in state:
                        newly_present += 1
                for line, count in state.items():
                    if line not in current:
                        changes.append((line, -count))
            for line, diff in changes:
                entry = cache.lookup(line)
                type_counts[entry.rule_type] += diff
                total += diff
                state[line] += diff
                if state[line] <= 0:
                    del state[line]
                if diff > 0:
                    for domain in entry.targeted_domains():
                        first_seen.setdefault(domain, revision.date)
            type_series.append((revision.date, snapshot_type_counts(type_counts)))
            total_series.append((revision.date, total))
            if previous_revision is not None:
                churn_series.append(newly_present)
            previous_revision = revision
        cache.flush_counts(hits_before, misses_before)
        count_history("revisions_folded", len(self._revisions))
        count_history("delta_folds", delta_folds)
        fold = {
            "rule_type_series": type_series,
            "total_rules_series": total_series,
            "domain_first_appearance": first_seen,
            "churn_series": churn_series,
        }
        self._memo["fold"] = fold
        return fold

    # -- churn ----------------------------------------------------------------

    def average_churn_per_revision(self) -> float:
        """Mean rules added/modified per revision (§3.2's headline rates)."""
        if len(self._revisions) < 2:
            return 0.0
        churn = self._fold()["churn_series"]
        return sum(churn) / (len(self._revisions) - 1)

    def average_churn_per_day(self) -> float:
        """Mean rules added/modified per calendar day over the history.

        A history whose revisions all fall on one calendar day spans zero
        days; its churn is attributed to that single day (``max(days, 1)``)
        instead of silently reporting 0.
        """
        if len(self._revisions) < 2:
            return 0.0
        days = max((self.last_date - self.first_date).days, 1)
        return sum(self._fold()["churn_series"]) / days

    # -- the §3 series ---------------------------------------------------------

    def rule_type_series(self) -> List[Tuple[date, Dict[RuleType, int]]]:
        """Per-revision Figure 1 rule-type counts (streaming fold)."""
        return [(when, dict(counts)) for when, counts in self._fold()["rule_type_series"]]

    def total_rules_series(self) -> List[Tuple[date, int]]:
        """(date, rule count) per revision (streaming fold)."""
        return list(self._fold()["total_rules_series"])

    def domain_first_appearance(self) -> Dict[str, date]:
        """First revision date at which each targeted domain appears.

        This drives §3.3's promptness comparison (Figure 3) and §4's
        rule-addition-delay CDF (Figure 7). Computed by the streaming fold
        in chronological order, which matches the full scan exactly:
        re-added lines keep their earliest date via ``setdefault``.
        """
        return dict(self._fold()["domain_first_appearance"])

    # -- full-scan reference implementations ----------------------------------
    #
    # The original O(revisions × rules) paths, kept as the oracle the
    # streaming fold is pinned equal to in tests.

    def rule_type_series_full_scan(self) -> List[Tuple[date, Dict[RuleType, int]]]:
        """Reference implementation of :meth:`rule_type_series`."""
        return [
            (revision.date, count_rule_types(revision.rules))
            for revision in self._revisions
        ]

    def total_rules_series_full_scan(self) -> List[Tuple[date, int]]:
        """Reference implementation of :meth:`total_rules_series`."""
        return [(revision.date, len(revision.rules)) for revision in self._revisions]

    def domain_first_appearance_full_scan(self) -> Dict[str, date]:
        """Reference implementation of :meth:`domain_first_appearance`."""
        first_seen: Dict[str, date] = {}
        for revision in self._revisions:
            for rule in revision.rules:
                for domain in rule.targeted_domains():
                    first_seen.setdefault(domain, revision.date)
        return first_seen

    def targeted_domains_latest(self) -> List[str]:
        """Domains targeted by the most recent revision."""
        latest = self.latest()
        if latest is None:
            return []
        seen = set()
        ordered: List[str] = []
        for rule in latest.rules:
            for domain in rule.targeted_domains():
                if domain not in seen:
                    seen.add(domain)
                    ordered.append(domain)
        return ordered


def combine_histories(name: str, *histories: FilterListHistory) -> FilterListHistory:
    """Merge several histories into one (the paper's *Combined EasyList*).

    For every date on which any input history has a revision, the combined
    revision concatenates each input's contemporaneous rules. Inputs that
    have no revision yet on a date contribute nothing (the Adblock Warning
    Removal List starts two years after EasyList's anti-adblock sections).
    """
    all_dates = sorted({revision.date for history in histories for revision in history})
    combined = FilterListHistory(name)
    for revision_date in all_dates:
        merged = FilterList(name=name)
        for history in histories:
            version = history.version_at(revision_date)
            if version is not None:
                merged.rules.extend(version.filter_list.rules)
        combined.add_revision(revision_date, merged)
    return combined
