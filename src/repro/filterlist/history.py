"""Filter-list revision histories.

§3 of the paper is entirely about how lists evolve: rules added/modified
per revision, rule-type mix over time, and when each targeted domain first
appears. §4 needs ``version_at`` to replay the *contemporaneous* list
against each archived snapshot.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from datetime import date
from typing import Dict, Iterator, List, Optional, Tuple

from .classify import RuleType, count_rule_types
from .parser import FilterList, parse_filter_list


@dataclass
class Revision:
    """One dated version of a filter list."""

    date: date
    filter_list: FilterList

    @property
    def rules(self):
        """The revision's rule objects."""
        return [parsed.rule for parsed in self.filter_list.rules]

    def rule_lines(self) -> List[str]:
        """The revision's raw rule lines."""
        return self.filter_list.rule_lines()


@dataclass
class RevisionDelta:
    """Line-level difference between two consecutive revisions."""

    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)

    @property
    def churn(self) -> int:
        """Rules added or modified (a modify shows as one add + one remove).

        The paper reports "adds or modifies N rules per revision"; we count
        additions, which includes the new form of every modified rule.
        """
        return len(self.added)


class FilterListHistory:
    """An ordered sequence of :class:`Revision` objects for one list."""

    def __init__(self, name: str, revisions: Optional[List[Revision]] = None) -> None:
        self.name = name
        self._revisions: List[Revision] = sorted(revisions or [], key=lambda r: r.date)

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._revisions)

    def __iter__(self) -> Iterator[Revision]:
        return iter(self._revisions)

    def __getitem__(self, index: int) -> Revision:
        return self._revisions[index]

    @property
    def revisions(self) -> List[Revision]:
        """All revisions, oldest first."""
        return list(self._revisions)

    def add_revision(self, revision_date: date, text_or_list) -> Revision:
        """Append a revision (text is parsed; revisions stay date-ordered)."""
        if isinstance(text_or_list, FilterList):
            filter_list = text_or_list
        else:
            filter_list = parse_filter_list(text_or_list, name=self.name)
        revision = Revision(date=revision_date, filter_list=filter_list)
        bisect.insort(self._revisions, revision, key=lambda r: r.date)
        return revision

    # -- queries ---------------------------------------------------------------

    @property
    def first_date(self) -> Optional[date]:
        """Date of the oldest revision, if any."""
        return self._revisions[0].date if self._revisions else None

    @property
    def last_date(self) -> Optional[date]:
        """Date of the newest revision, if any."""
        return self._revisions[-1].date if self._revisions else None

    def version_at(self, when: date) -> Optional[Revision]:
        """Latest revision dated on or before ``when`` (contemporaneous list)."""
        dates = [revision.date for revision in self._revisions]
        index = bisect.bisect_right(dates, when) - 1
        return self._revisions[index] if index >= 0 else None

    def latest(self) -> Optional[Revision]:
        """The newest revision, if any."""
        return self._revisions[-1] if self._revisions else None

    def index_of_date(self, when: date) -> Optional[int]:
        """Index of the (first) revision dated exactly ``when``, if any."""
        dates = [revision.date for revision in self._revisions]
        index = bisect.bisect_left(dates, when)
        if index < len(dates) and dates[index] == when:
            return index
        return None

    def predecessor(self, revision: Revision) -> Optional[Revision]:
        """The revision immediately before ``revision`` in this history."""
        index = self.index_of_date(revision.date)
        if index is None or index == 0:
            return None
        return self._revisions[index - 1]

    def delta(self, index: int) -> RevisionDelta:
        """Difference between revision ``index`` and its predecessor."""
        current = set(self._revisions[index].rule_lines())
        previous = set(self._revisions[index - 1].rule_lines()) if index > 0 else set()
        return RevisionDelta(
            added=sorted(current - previous), removed=sorted(previous - current)
        )

    def network_rule_delta(self, index: int) -> Tuple[list, list]:
        """``(added, removed)`` *network* rule objects for revision ``index``.

        Resolves :meth:`delta`'s raw lines back to the parsed
        :class:`~repro.filterlist.rules.NetworkRule` objects of the two
        revisions, so the §4 replay can derive revision ``index``'s matcher
        from revision ``index - 1``'s by editing only the delta instead of
        re-scanning the full rule set. Element-rule lines are skipped.
        """
        delta = self.delta(index)
        current = {
            rule.raw: rule for rule in self._revisions[index].filter_list.network_rules
        }
        previous = (
            {
                rule.raw: rule
                for rule in self._revisions[index - 1].filter_list.network_rules
            }
            if index > 0
            else {}
        )
        added = [current[line] for line in delta.added if line in current]
        removed = [previous[line] for line in delta.removed if line in previous]
        return added, removed

    def average_churn_per_revision(self) -> float:
        """Mean rules added/modified per revision (§3.2's headline rates)."""
        if len(self._revisions) < 2:
            return 0.0
        total = sum(self.delta(i).churn for i in range(1, len(self._revisions)))
        return total / (len(self._revisions) - 1)

    def average_churn_per_day(self) -> float:
        """Mean rules added/modified per calendar day over the history."""
        if len(self._revisions) < 2:
            return 0.0
        days = (self.last_date - self.first_date).days
        if days <= 0:
            return 0.0
        total = sum(self.delta(i).churn for i in range(1, len(self._revisions)))
        return total / days

    def rule_type_series(self) -> List[Tuple[date, Dict[RuleType, int]]]:
        """Per-revision Figure 1 rule-type counts."""
        return [
            (revision.date, count_rule_types(revision.rules))
            for revision in self._revisions
        ]

    def total_rules_series(self) -> List[Tuple[date, int]]:
        """(date, rule count) per revision."""
        return [(revision.date, len(revision.rules)) for revision in self._revisions]

    def domain_first_appearance(self) -> Dict[str, date]:
        """First revision date at which each targeted domain appears.

        This drives §3.3's promptness comparison (Figure 3) and §4's
        rule-addition-delay CDF (Figure 7).
        """
        first_seen: Dict[str, date] = {}
        for revision in self._revisions:
            for rule in revision.rules:
                for domain in rule.targeted_domains():
                    first_seen.setdefault(domain, revision.date)
        return first_seen

    def targeted_domains_latest(self) -> List[str]:
        """Domains targeted by the most recent revision."""
        latest = self.latest()
        if latest is None:
            return []
        seen = set()
        ordered: List[str] = []
        for rule in latest.rules:
            for domain in rule.targeted_domains():
                if domain not in seen:
                    seen.add(domain)
                    ordered.append(domain)
        return ordered


def combine_histories(name: str, *histories: FilterListHistory) -> FilterListHistory:
    """Merge several histories into one (the paper's *Combined EasyList*).

    For every date on which any input history has a revision, the combined
    revision concatenates each input's contemporaneous rules. Inputs that
    have no revision yet on a date contribute nothing (the Adblock Warning
    Removal List starts two years after EasyList's anti-adblock sections).
    """
    all_dates = sorted({revision.date for history in histories for revision in history})
    combined = FilterListHistory(name)
    for revision_date in all_dates:
        merged = FilterList(name=name)
        for history in histories:
            version = history.version_at(revision_date)
            if version is not None:
                merged.rules.extend(version.filter_list.rules)
        combined.add_revision(revision_date, merged)
    return combined
