"""Minimal CSS selector engine for element-hiding rules.

Element-hiding rules in anti-adblock filter lists overwhelmingly use ID
(``###notice``) and class (``##.adblock-overlay``) selectors, occasionally
with attribute tests or descendant/child combinators. This engine covers
that subset and works against any DOM object exposing ``tag``, ``attrs``,
``children`` and ``parent`` (satisfied by :class:`repro.web.dom.Element`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional

class SelectorParseError(ValueError):
    """Raised when a selector string cannot be parsed."""


@dataclass
class SimpleSelector:
    """One compound selector: ``tag#id.class[attr=value]``."""

    tag: Optional[str] = None
    id: Optional[str] = None
    classes: List[str] = field(default_factory=list)
    attributes: List[tuple] = field(default_factory=list)  # (name, op, value)

    def matches(self, element) -> bool:
        """Whether the element satisfies this compound selector."""
        if self.tag is not None and element.tag.lower() != self.tag:
            return False
        if self.id is not None and element.attrs.get("id") != self.id:
            return False
        if self.classes:
            element_classes = set(element.attrs.get("class", "").split())
            if not all(cls in element_classes for cls in self.classes):
                return False
        for name, op, value in self.attributes:
            actual = element.attrs.get(name)
            if actual is None:
                return False
            if op == "=" and actual != value:
                return False
            if op == "^=" and not actual.startswith(value):
                return False
            if op == "$=" and not actual.endswith(value):
                return False
            if op == "*=" and value not in actual:
                return False
            if op == "~=" and value not in actual.split():
                return False
        return True


@dataclass
class Selector:
    """A selector chain: compound selectors joined by combinators."""

    parts: List[SimpleSelector] = field(default_factory=list)
    combinators: List[str] = field(default_factory=list)  # between parts: ' ' or '>'

    def matches(self, element) -> bool:
        """Whether ``element`` matches the full chain (rightmost-first)."""
        if not self.parts:
            return False
        if not self.parts[-1].matches(element):
            return False
        return self._match_ancestors(element, len(self.parts) - 2)

    def _match_ancestors(self, element, part_index: int) -> bool:
        if part_index < 0:
            return True
        combinator = self.combinators[part_index]
        part = self.parts[part_index]
        parent = element.parent
        if combinator == ">":
            if parent is None or not part.matches(parent):
                return False
            return self._match_ancestors(parent, part_index - 1)
        # descendant combinator: try every ancestor
        while parent is not None:
            if part.matches(parent) and self._match_ancestors(parent, part_index - 1):
                return True
            parent = parent.parent
        return False


_TOKEN_RE = re.compile(
    r"""
    (?P<combinator>\s*>\s*|\s+)
    | (?P<id>\#[-\w]+)
    | (?P<class>\.[-\w]+)
    | (?P<attr>\[[^\]]+\])
    | (?P<tag>[-\w]+|\*)
    """,
    re.VERBOSE,
)

_ATTR_RE = re.compile(
    r"""^\[\s*(?P<name>[-\w]+)\s*(?:(?P<op>[~^$*|]?=)\s*(?P<value>"[^"]*"|'[^']*'|[^\]\s]*)\s*)?\]$""",
)


def parse_selector_group(text: str) -> List[Selector]:
    """Parse a (possibly comma-separated) selector group."""
    selectors = []
    for piece in text.split(","):
        piece = piece.strip()
        if piece:
            selectors.append(parse_selector(piece))
    if not selectors:
        raise SelectorParseError(f"empty selector: {text!r}")
    return selectors


def parse_selector(text: str) -> Selector:
    """Parse a single selector chain."""
    text = text.strip()
    if not text:
        raise SelectorParseError("empty selector")
    parts: List[SimpleSelector] = [SimpleSelector()]
    combinators: List[str] = []
    position = 0
    part_has_content = False
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SelectorParseError(f"cannot parse selector {text!r} at {position}")
        position = match.end()
        if match.group("combinator") is not None:
            if not part_has_content:
                raise SelectorParseError(f"dangling combinator in {text!r}")
            combinators.append(">" if ">" in match.group("combinator") else " ")
            parts.append(SimpleSelector())
            part_has_content = False
            continue
        current = parts[-1]
        part_has_content = True
        if match.group("id"):
            current.id = match.group("id")[1:]
        elif match.group("class"):
            current.classes.append(match.group("class")[1:])
        elif match.group("attr"):
            attr_match = _ATTR_RE.match(match.group("attr"))
            if attr_match is None:
                raise SelectorParseError(f"bad attribute selector in {text!r}")
            name = attr_match.group("name")
            op = attr_match.group("op")
            value = attr_match.group("value")
            if op is None:
                current.attributes.append((name, "present", ""))
            else:
                if value and value[0] in "\"'" and value[-1] == value[0]:
                    value = value[1:-1]
                current.attributes.append((name, op, value))
        elif match.group("tag"):
            tag = match.group("tag")
            current.tag = None if tag == "*" else tag.lower()
    if not part_has_content:
        raise SelectorParseError(f"dangling combinator in {text!r}")
    return Selector(parts=parts, combinators=combinators)


def select(root, selector_text: str) -> List:
    """All elements under ``root`` (inclusive) matching the selector group."""
    selectors = parse_selector_group(selector_text)
    matched = []
    stack = [root]
    while stack:
        element = stack.pop()
        if any(s.matches(element) for s in selectors):
            matched.append(element)
        stack.extend(reversed(element.children))
    return matched
