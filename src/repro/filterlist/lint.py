"""Filter-list linting: redundancy and dead-rule analysis.

Crowdsourced lists accumulate cruft — §3.3's comparison shows both lists
carrying thousands of rules of very different styles. This linter finds
the three classes of cruft that matter when merging ML-generated candidate
rules (:mod:`repro.core.rulegen`) into an existing list:

- **duplicates** — textually identical rules;
- **shadowed rules** — a specific rule that can never decide a request
  because a broader rule of the same polarity already matches everything
  it matches (``||pagefair.com/measure.js`` under ``||pagefair.com^``);
- **dead exceptions** — ``@@`` rules whose pattern no blocking rule can
  ever match, so they override nothing.

Shadowing is decided *semantically* by probing: the candidate's pattern is
materialised into representative URLs and checked against the broader
rule. That is exact for the anchor/path shapes lists actually use, without
attempting general regex-containment (undecidable in the ABP dialect's
full generality).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .rules import ElementRule, NetworkRule

Rule = Union[NetworkRule, ElementRule]


@dataclass
class LintFinding:
    """One linter finding."""

    kind: str  # "duplicate" | "shadowed" | "dead-exception"
    rule: Rule
    by: Optional[Rule] = None  # the rule that causes the finding, if any

    def describe(self) -> str:
        """Human-readable one-liner for review output."""
        if self.kind == "duplicate":
            return f"duplicate: {self.rule.raw}"
        if self.kind == "shadowed":
            return f"shadowed: {self.rule.raw}  (by {self.by.raw})"
        return f"dead exception: {self.rule.raw}"


@dataclass
class LintReport:
    """All findings for one list."""

    findings: List[LintFinding] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.findings)

    def of_kind(self, kind: str) -> List[LintFinding]:
        """Findings of one kind."""
        return [f for f in self.findings if f.kind == kind]

    def flagged_rules(self) -> List[Rule]:
        """The rules the linter would drop."""
        return [f.rule for f in self.findings]


def probe_urls(rule: NetworkRule) -> List[str]:
    """Representative URLs the rule's pattern matches.

    Anchored patterns reconstruct naturally; substring patterns are
    embedded in a neutral URL. Wildcards are filled with a short literal.
    """
    pattern = rule.pattern.replace("*", "x").replace("^", "/")
    if rule.anchor_domain:
        return [f"http://{pattern}", f"http://{pattern}x"]
    if rule.anchor_start:
        return [pattern if "://" in pattern else f"http://{pattern}"]
    body = pattern.lstrip("/")
    return [f"http://probe.example/{body}", f"http://probe.example/{body}?x=1"]


def _same_constraints(a: NetworkRule, b: NetworkRule) -> bool:
    """Whether ``b``'s option constraints are at most as strict as ``a``'s.

    ``b`` shadows ``a`` only if every request ``a`` matches also satisfies
    ``b``'s options: ``b`` must not demand resource types or domains that
    ``a`` does not already imply.
    """
    if b.types and not (a.types and a.types <= b.types):
        return False
    if b.negated_types and not b.negated_types <= a.negated_types:
        return False
    if b.third_party is not None and b.third_party != a.third_party:
        return False
    if b.domains.include:
        if not a.domains.include:
            return False
        if not set(a.domains.include) <= set(b.domains.include):
            return False
    if b.domains.exclude and not set(b.domains.exclude) <= set(a.domains.exclude):
        return False
    return True


def shadows(broader: NetworkRule, specific: NetworkRule) -> bool:
    """Whether ``broader`` matches everything ``specific`` matches."""
    if broader is specific or broader.raw == specific.raw:
        return False
    if broader.is_exception != specific.is_exception:
        return False
    if broader.is_regex or specific.is_regex:
        return False
    if not _same_constraints(specific, broader):
        return False
    urls = probe_urls(specific)
    if not urls:
        return False
    page_domain = specific.domains.include[0] if specific.domains.include else ""
    return all(
        broader.matches(
            url,
            page_domain=page_domain,
            resource_type=next(iter(specific.types), "script"),
            third_party=specific.third_party,
        )
        for url in urls
    )


def lint_rules(rules: Sequence[Rule]) -> LintReport:
    """Lint a rule set; returns every duplicate/shadowed/dead finding."""
    report = LintReport()
    seen_raw: Dict[str, Rule] = {}
    for rule in rules:
        if rule.raw in seen_raw:
            report.findings.append(
                LintFinding(kind="duplicate", rule=rule, by=seen_raw[rule.raw])
            )
        else:
            seen_raw[rule.raw] = rule

    network = [r for r in rules if isinstance(r, NetworkRule)]
    blocking = [r for r in network if not r.is_exception]
    exceptions = [r for r in network if r.is_exception]

    # Shadowing: compare each rule against broader same-polarity rules.
    # Quadratic, bucketed by anchor host to stay fast on real list sizes.
    by_host: Dict[str, List[NetworkRule]] = {}
    generic: List[NetworkRule] = []
    for rule in network:
        host = rule.anchor_domain_name()
        if host:
            by_host.setdefault(host, []).append(rule)
        else:
            generic.append(rule)
    for rule in network:
        candidates: Iterable[NetworkRule] = generic
        host = rule.anchor_domain_name()
        if host:
            parts = host.split(".")
            related: List[NetworkRule] = []
            for i in range(len(parts) - 1):
                related.extend(by_host.get(".".join(parts[i:]), []))
            candidates = list(generic) + related
        for other in candidates:
            if shadows(other, rule):
                report.findings.append(LintFinding(kind="shadowed", rule=rule, by=other))
                break

    # Dead exceptions: no blocking rule matches the exception's probes.
    for exception in exceptions:
        urls = probe_urls(exception)
        page_domain = (
            exception.domains.include[0] if exception.domains.include else ""
        )
        alive = any(
            blocker.matches(
                url,
                page_domain=page_domain,
                resource_type=next(iter(exception.types), "script"),
                third_party=exception.third_party,
            )
            for url in urls
            for blocker in blocking
        )
        if not alive:
            report.findings.append(LintFinding(kind="dead-exception", rule=exception))
    return report


def deduplicate_against(
    candidates: Sequence[NetworkRule], existing: Sequence[Rule]
) -> Tuple[List[NetworkRule], List[LintFinding]]:
    """Drop candidate rules an existing list already covers.

    The merge step of the ML-assisted authoring workflow: a candidate is
    dropped when it is textually present or semantically shadowed by an
    existing rule. Returns ``(kept, dropped_findings)``.
    """
    existing_raw = {rule.raw for rule in existing}
    existing_network = [r for r in existing if isinstance(r, NetworkRule)]
    kept: List[NetworkRule] = []
    dropped: List[LintFinding] = []
    for candidate in candidates:
        if candidate.raw in existing_raw:
            dropped.append(LintFinding(kind="duplicate", rule=candidate))
            continue
        shadow = next(
            (rule for rule in existing_network if shadows(rule, candidate)), None
        )
        if shadow is not None:
            dropped.append(LintFinding(kind="shadowed", rule=candidate, by=shadow))
            continue
        kept.append(candidate)
    return kept, dropped
