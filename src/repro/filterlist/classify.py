"""Rule-type taxonomy used throughout the paper's §3.

Figure 1 breaks every filter list down into six rule types:

- HTML rules without domain
- HTML rules with domain
- HTTP rules without domain anchor and tag
- HTTP rules with domain anchor
- HTTP rules with domain tag
- HTTP rules with domain anchor and tag

plus the orthogonal exception / non-exception split used in §3.3.
"""

from __future__ import annotations

from collections import Counter
from enum import Enum
from typing import Dict, Iterable, List, Union

from .rules import ElementRule, NetworkRule

Rule = Union[NetworkRule, ElementRule]


class RuleType(str, Enum):
    """The six rule types of Figure 1."""

    HTML_NO_DOMAIN = "HTML rules without domain"
    HTML_WITH_DOMAIN = "HTML rules with domain"
    HTTP_NO_ANCHOR_NO_TAG = "HTTP rules without domain anchor and tag"
    HTTP_ANCHOR = "HTTP rules with domain anchor"
    HTTP_TAG = "HTTP rules with domain tag"
    HTTP_ANCHOR_AND_TAG = "HTTP rules with domain anchor and tag"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Figure 1 series order.
RULE_TYPE_ORDER = [
    RuleType.HTML_NO_DOMAIN,
    RuleType.HTML_WITH_DOMAIN,
    RuleType.HTTP_NO_ANCHOR_NO_TAG,
    RuleType.HTTP_ANCHOR,
    RuleType.HTTP_TAG,
    RuleType.HTTP_ANCHOR_AND_TAG,
]


def classify_rule(rule: Rule) -> RuleType:
    """Assign a rule to its Figure 1 category."""
    if isinstance(rule, ElementRule):
        return RuleType.HTML_WITH_DOMAIN if rule.has_domain else RuleType.HTML_NO_DOMAIN
    anchor = rule.has_domain_anchor
    tag = rule.has_domain_tag
    if anchor and tag:
        return RuleType.HTTP_ANCHOR_AND_TAG
    if anchor:
        return RuleType.HTTP_ANCHOR
    if tag:
        return RuleType.HTTP_TAG
    return RuleType.HTTP_NO_ANCHOR_NO_TAG


def count_rule_types(rules: Iterable[Rule]) -> Dict[RuleType, int]:
    """Counts per Figure 1 category, with zero entries for absent types."""
    counts = Counter(classify_rule(rule) for rule in rules)
    return {rule_type: counts.get(rule_type, 0) for rule_type in RULE_TYPE_ORDER}


def snapshot_type_counts(running: Counter) -> Dict[RuleType, int]:
    """Freeze a streaming fold's running category counter into Figure 1 form.

    The incremental §3 history engine keeps one ``Counter[RuleType]``
    alive across revisions and snapshots it after each one; this produces
    exactly :func:`count_rule_types`'s shape — every category present, in
    ``RULE_TYPE_ORDER``, zeros included — so streaming and full-scan
    series compare ``==`` element-wise.
    """
    return {rule_type: running.get(rule_type, 0) for rule_type in RULE_TYPE_ORDER}


def rule_type_percentages(rules: Iterable[Rule]) -> Dict[RuleType, float]:
    """Percentages per category (the §3.2 composition numbers)."""
    counts = count_rule_types(list(rules))
    total = sum(counts.values())
    if total == 0:
        return {rule_type: 0.0 for rule_type in RULE_TYPE_ORDER}
    return {rule_type: 100.0 * count / total for rule_type, count in counts.items()}


def http_html_split(rules: Iterable[Rule]) -> Dict[str, float]:
    """The headline HTTP% / HTML% split quoted in §3.2."""
    rules = list(rules)
    total = len(rules)
    if total == 0:
        return {"http": 0.0, "html": 0.0}
    html = sum(1 for rule in rules if isinstance(rule, ElementRule))
    return {"http": 100.0 * (total - html) / total, "html": 100.0 * html / total}


def is_exception_rule(rule: Rule) -> bool:
    """Whether the rule is an @@ or #@# exception."""
    return rule.is_exception


def targeted_domains(rules: Iterable[Rule]) -> List[str]:
    """Every domain targeted by any rule, de-duplicated, insertion order."""
    seen = set()
    ordered: List[str] = []
    for rule in rules:
        for domain in rule.targeted_domains():
            if domain not in seen:
                seen.add(domain)
                ordered.append(domain)
    return ordered


def domains_by_exception_status(rules: Iterable[Rule]) -> Dict[str, set]:
    """Partition targeted domains into exception / non-exception sets.

    A domain is labelled *exception* when it appears in exception rules and
    *non-exception* when it appears in blocking rules (§3.3 labels domains
    by the rules they appear in; a domain can appear in both sets).
    """
    exception: set = set()
    non_exception: set = set()
    for rule in rules:
        bucket = exception if rule.is_exception else non_exception
        bucket.update(rule.targeted_domains())
    return {"exception": exception, "non_exception": non_exception}
