"""Adblock Plus filter-list engine.

Substitutes for the ``adblockparser`` library plus Adblock Plus itself:
rule parsing (:mod:`~repro.filterlist.rules`), list documents with sections
(:mod:`~repro.filterlist.parser`), token-indexed URL matching
(:mod:`~repro.filterlist.matcher`), element-hiding selectors
(:mod:`~repro.filterlist.selectors`), the paper's Figure 1 rule taxonomy
(:mod:`~repro.filterlist.classify`) and revision histories
(:mod:`~repro.filterlist.history`).
"""

from .classify import (
    RULE_TYPE_ORDER,
    RuleType,
    classify_rule,
    count_rule_types,
    domains_by_exception_status,
    http_html_split,
    rule_type_percentages,
    targeted_domains,
)
from .lint import LintFinding, LintReport, deduplicate_against, lint_rules, shadows
from .history import FilterListHistory, Revision, RevisionDelta, combine_histories
from .matcher import MatchResult, NetworkMatcher
from .parser import FilterList, ParsedRule, parse_filter_list, serialize_filter_list
from .rules import (
    DomainOption,
    ElementRule,
    NetworkRule,
    RuleParseError,
    domain_matches,
    parse_rule,
)
from .selectors import Selector, SelectorParseError, parse_selector, parse_selector_group, select

__all__ = [
    "RULE_TYPE_ORDER",
    "RuleType",
    "classify_rule",
    "count_rule_types",
    "domains_by_exception_status",
    "http_html_split",
    "rule_type_percentages",
    "targeted_domains",
    "LintFinding",
    "LintReport",
    "deduplicate_against",
    "lint_rules",
    "shadows",
    "FilterListHistory",
    "Revision",
    "RevisionDelta",
    "combine_histories",
    "MatchResult",
    "NetworkMatcher",
    "FilterList",
    "ParsedRule",
    "parse_filter_list",
    "serialize_filter_list",
    "DomainOption",
    "ElementRule",
    "NetworkRule",
    "RuleParseError",
    "domain_matches",
    "parse_rule",
    "Selector",
    "SelectorParseError",
    "parse_selector",
    "parse_selector_group",
    "select",
]
