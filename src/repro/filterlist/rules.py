"""Rule model for Adblock Plus style filter lists.

Implements the two rule families the paper analyses (§2.1):

- **HTTP request filter rules** (:class:`NetworkRule`) matching request URLs,
  with domain anchors (``||``), start/end anchors (``|``), wildcards (``*``),
  the separator placeholder (``^``), and ``$``-options (resource types,
  ``third-party``, ``domain=``).
- **HTML element filter rules** (:class:`ElementRule`) hiding elements by
  CSS selector, optionally restricted to a set of domains.

Exception rules (``@@`` and ``#@#``) override their blocking counterparts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import FrozenSet, List, Optional, Tuple

#: Resource-type options understood by the matcher. ``document`` and
#: ``elemhide`` only make sense on exceptions but parse everywhere.
RESOURCE_TYPE_OPTIONS = frozenset(
    """script image stylesheet object xmlhttprequest object-subrequest
    subdocument document elemhide other background xbl ping dtd media
    websocket webrtc popup font""".split()
)

#: Options that take no value and are not resource types.
FLAG_OPTIONS = frozenset({"third-party", "match-case", "collapse", "donottrack", "generichide", "genericblock"})


class RuleParseError(ValueError):
    """Raised when a filter-rule line cannot be parsed."""


def domain_matches(candidate: str, rule_domain: str) -> bool:
    """True when ``candidate`` equals ``rule_domain`` or is a subdomain."""
    candidate = candidate.lower().rstrip(".")
    rule_domain = rule_domain.lower().rstrip(".")
    if candidate == rule_domain:
        return True
    return candidate.endswith("." + rule_domain)


@dataclass(frozen=True)
class DomainOption:
    """Parsed ``domain=`` option: positive and negated (``~``) domains."""

    include: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    @classmethod
    def parse(cls, value: str) -> "DomainOption":
        """Parse one rule line into a rule object."""
        include: List[str] = []
        exclude: List[str] = []
        for part in value.replace(",", "|").split("|"):
            part = part.strip().lower()
            if not part:
                continue
            if part.startswith("~"):
                exclude.append(part[1:])
            else:
                include.append(part)
        return cls(include=tuple(include), exclude=tuple(exclude))

    def applies_to(self, page_domain: str) -> bool:
        """Whether a rule with this option is active on ``page_domain``."""
        if any(domain_matches(page_domain, d) for d in self.exclude):
            return False
        if self.include:
            return any(domain_matches(page_domain, d) for d in self.include)
        return True

    @property
    def is_empty(self) -> bool:
        """Whether the option carries no domains at all."""
        return not self.include and not self.exclude


@lru_cache(maxsize=65536)
def _compile_pattern(pattern: str, anchor_start: bool, anchor_end: bool, anchor_domain: bool) -> re.Pattern:
    """Translate an ABP URL pattern into a compiled regular expression."""
    regex = re.escape(pattern)
    regex = regex.replace(r"\*", ".*")
    # ``^`` matches a separator: anything that is not a letter, digit, or
    # one of ``_ - . %``; it also matches the end of the URL.
    regex = regex.replace(r"\^", r"(?:[^\w\-.%]|$)")
    if anchor_domain:
        regex = r"^[a-z][a-z0-9+.\-]*://(?:[^/?#]*\.)?" + regex
    elif anchor_start:
        regex = "^" + regex
    if anchor_end:
        regex += "$"
    return re.compile(regex, re.IGNORECASE)


@dataclass
class NetworkRule:
    """One HTTP request filter rule.

    Attributes mirror the ABP syntax: ``pattern`` is the URL pattern with
    anchors stripped; the three ``anchor_*`` flags record ``|``/``||``;
    ``types``/``negated_types`` hold resource-type options; ``third_party``
    is ``True``/``False``/``None`` for ``$third-party``/``$~third-party``/
    unspecified; ``domains`` is the parsed ``domain=`` option.
    """

    raw: str
    pattern: str
    is_exception: bool = False
    anchor_start: bool = False
    anchor_end: bool = False
    anchor_domain: bool = False
    types: FrozenSet[str] = frozenset()
    negated_types: FrozenSet[str] = frozenset()
    third_party: Optional[bool] = None
    domains: DomainOption = field(default_factory=DomainOption)
    is_regex: bool = False
    _regex: Optional[re.Pattern] = field(default=None, repr=False, compare=False)

    # -- construction -------------------------------------------------------

    @classmethod
    def parse(cls, line: str) -> "NetworkRule":
        """Parse one network-rule line (without surrounding whitespace)."""
        raw = line
        is_exception = line.startswith("@@")
        if is_exception:
            line = line[2:]

        options_text = ""
        if line.startswith("/") and line.rstrip("/").count("/") >= 1 and line.endswith("/") and len(line) > 2:
            # ``/regex/`` rules — rare; treated as raw regex.
            return cls(raw=raw, pattern=line[1:-1], is_exception=is_exception, is_regex=True)
        dollar = cls._find_options_separator(line)
        if dollar >= 0:
            options_text = line[dollar + 1 :]
            line = line[:dollar]

        anchor_domain = line.startswith("||")
        if anchor_domain:
            line = line[2:]
        anchor_start = not anchor_domain and line.startswith("|")
        if anchor_start:
            line = line[1:]
        anchor_end = line.endswith("|")
        if anchor_end:
            line = line[:-1]

        if not line:
            # A bare ``@@``/``||``/``|`` would compile to a match-everything
            # pattern; real adblockers reject such lines.
            raise RuleParseError(f"empty pattern in rule {raw!r}")

        rule = cls(
            raw=raw,
            pattern=line,
            is_exception=is_exception,
            anchor_start=anchor_start,
            anchor_end=anchor_end,
            anchor_domain=anchor_domain,
        )
        if options_text:
            rule._apply_options(options_text)
        return rule

    @staticmethod
    def _find_options_separator(line: str) -> int:
        """Index of the ``$`` that starts the options, or -1.

        The separator is the last ``$`` whose suffix looks like a valid
        option list (guards against ``$`` inside URL patterns).
        """
        index = line.rfind("$")
        if index <= 0 or index == len(line) - 1:
            return -1
        suffix = line[index + 1 :]
        if re.fullmatch(r"[\w\-~,=.|:*%^]+", suffix):
            return index
        return -1

    def _apply_options(self, options_text: str) -> None:
        types = set()
        negated = set()
        for option in options_text.split(","):
            option = option.strip()
            if not option:
                continue
            lowered = option.lower()
            if lowered.startswith("domain="):
                self.domains = DomainOption.parse(option[len("domain=") :])
            elif lowered == "third-party":
                self.third_party = True
            elif lowered == "~third-party":
                self.third_party = False
            elif lowered in FLAG_OPTIONS:
                continue
            elif lowered.startswith("sitekey=") or lowered.startswith("csp=") or lowered.startswith("rewrite="):
                continue
            elif lowered.startswith("~") and lowered[1:] in RESOURCE_TYPE_OPTIONS:
                negated.add(lowered[1:])
            elif lowered in RESOURCE_TYPE_OPTIONS:
                types.add(lowered)
            else:
                raise RuleParseError(f"unknown option {option!r} in {self.raw!r}")
        self.types = frozenset(types)
        self.negated_types = frozenset(negated)

    # -- matching -----------------------------------------------------------

    @property
    def regex(self) -> re.Pattern:
        """The compiled URL-matching regular expression (lazy)."""
        if self._regex is None:
            if self.is_regex:
                self._regex = re.compile(self.pattern, re.IGNORECASE)
            else:
                self._regex = _compile_pattern(
                    self.pattern, self.anchor_start, self.anchor_end, self.anchor_domain
                )
        return self._regex

    def matches(
        self,
        url: str,
        page_domain: str = "",
        resource_type: str = "other",
        third_party: Optional[bool] = None,
    ) -> bool:
        """Whether this rule matches ``url`` requested from ``page_domain``."""
        if self.third_party is not None and third_party is not None:
            if self.third_party != third_party:
                return False
        if self.types and resource_type not in self.types:
            return False
        if self.negated_types and resource_type in self.negated_types:
            return False
        if not self.domains.is_empty and not self.domains.applies_to(page_domain):
            return False
        return self.regex.search(url) is not None

    # -- taxonomy helpers ----------------------------------------------------

    @property
    def has_domain_anchor(self) -> bool:
        """Whether the pattern starts with the || anchor."""
        return self.anchor_domain

    @property
    def has_domain_tag(self) -> bool:
        """Whether a $domain= option is present."""
        return bool(self.domains.include or self.domains.exclude)

    def anchor_domain_name(self) -> Optional[str]:
        """The registered host targeted by the domain anchor, if any."""
        if not self.anchor_domain:
            return None
        match = re.match(r"^([\w.\-]+)", self.pattern)
        if not match:
            return None
        host = match.group(1).strip(".").lower()
        return host or None

    def targeted_domains(self) -> List[str]:
        """Domains this rule is written against (for §3.3's overlap study)."""
        domains: List[str] = []
        anchor = self.anchor_domain_name()
        if anchor:
            domains.append(anchor)
        domains.extend(self.domains.include)
        seen = set()
        unique = []
        for domain in domains:
            if domain not in seen:
                seen.add(domain)
                unique.append(domain)
        return unique


@dataclass
class ElementRule:
    """One HTML element-hiding rule (``domains##selector``)."""

    raw: str
    selector: str
    include_domains: Tuple[str, ...] = ()
    exclude_domains: Tuple[str, ...] = ()
    is_exception: bool = False

    SEPARATORS = ("#@#", "##")

    @classmethod
    def parse(cls, line: str) -> "ElementRule":
        """Parse one rule line into a rule object."""
        for separator in cls.SEPARATORS:
            index = line.find(separator)
            if index >= 0:
                domains_text = line[:index]
                selector = line[index + len(separator) :].strip()
                if not selector:
                    raise RuleParseError(f"empty selector in {line!r}")
                include: List[str] = []
                exclude: List[str] = []
                for part in domains_text.split(","):
                    part = part.strip().lower()
                    if not part:
                        continue
                    if part.startswith("~"):
                        exclude.append(part[1:])
                    else:
                        include.append(part)
                return cls(
                    raw=line,
                    selector=selector,
                    include_domains=tuple(include),
                    exclude_domains=tuple(exclude),
                    is_exception=separator == "#@#",
                )
        raise RuleParseError(f"not an element rule: {line!r}")

    def applies_to(self, page_domain: str) -> bool:
        """Whether the rule is active on ``page_domain``."""
        if any(domain_matches(page_domain, d) for d in self.exclude_domains):
            return False
        if self.include_domains:
            return any(domain_matches(page_domain, d) for d in self.include_domains)
        return True

    @property
    def has_domain(self) -> bool:
        """Whether the rule is restricted to specific domains."""
        return bool(self.include_domains)

    def targeted_domains(self) -> List[str]:
        """Domains this rule is written against."""
        return list(self.include_domains)


def is_element_rule_line(line: str) -> bool:
    """Quick syntactic test for element-hiding rules."""
    return "##" in line or "#@#" in line


def parse_rule(line: str):
    """Parse a single rule line into a NetworkRule or ElementRule."""
    line = line.strip()
    if not line or line.startswith("!") or line.startswith("["):
        raise RuleParseError(f"not a rule line: {line!r}")
    if is_element_rule_line(line):
        return ElementRule.parse(line)
    return NetworkRule.parse(line)
