"""URL matching engine over a set of network rules.

Mirrors how real adblockers evaluate requests: exception (``@@``) rules
dominate blocking rules, and rules are indexed by a literal token so a
request only probes a small candidate subset rather than every rule (the
classic keyword-index trick from Adblock Plus).
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from .rules import NetworkRule

_TOKEN_RE = re.compile(r"[a-z0-9]{3,}")

#: Tokens too common to discriminate; never used as index keys.
_STOP_TOKENS = frozenset(
    {"http", "https", "www", "com", "net", "org", "html", "index", "js", "css"}
)


def _pattern_tokens(rule: NetworkRule) -> List[str]:
    """Candidate index tokens: literal runs of the pattern, no wildcards."""
    if rule.is_regex:
        return []
    tokens = []
    for chunk in re.split(r"[*^|]", rule.pattern.lower()):
        tokens.extend(_TOKEN_RE.findall(chunk))
    return [t for t in tokens if t not in _STOP_TOKENS]


@dataclass
class MatchResult:
    """Outcome of matching one URL against the engine."""

    blocked: bool
    rule: Optional[NetworkRule] = None
    exception: Optional[NetworkRule] = None

    def __bool__(self) -> bool:
        return self.blocked


class NetworkMatcher:
    """Token-indexed matcher over network rules.

    ``match`` answers the adblocker question — is this request blocked? —
    while ``first_match`` answers the measurement question used throughout
    §4 — does *any* rule (blocking or exception) trigger on this URL?
    """

    def __init__(self, rules: Iterable[NetworkRule]) -> None:
        self._block_index: Dict[str, List[NetworkRule]] = defaultdict(list)
        self._allow_index: Dict[str, List[NetworkRule]] = defaultdict(list)
        self._block_rest: List[NetworkRule] = []
        self._allow_rest: List[NetworkRule] = []
        self._count = 0
        token_frequency: Dict[str, int] = defaultdict(int)
        rules = list(rules)
        for rule in rules:
            for token in _pattern_tokens(rule):
                token_frequency[token] += 1
        for rule in rules:
            self._count += 1
            tokens = _pattern_tokens(rule)
            index = self._allow_index if rule.is_exception else self._block_index
            rest = self._allow_rest if rule.is_exception else self._block_rest
            if tokens:
                # Index under the rarest token for the smallest buckets.
                best = min(tokens, key=lambda t: token_frequency[t])
                index[best].append(rule)
            else:
                rest.append(rule)

    def __len__(self) -> int:
        return self._count

    @staticmethod
    def _url_tokens(url: str) -> List[str]:
        return _TOKEN_RE.findall(url.lower())

    def _candidates(
        self, url: str, index: Dict[str, List[NetworkRule]], rest: List[NetworkRule]
    ) -> Iterable[NetworkRule]:
        seen_buckets = set()
        for token in self._url_tokens(url):
            if token in index and token not in seen_buckets:
                seen_buckets.add(token)
                yield from index[token]
        yield from rest

    def _first(
        self,
        url: str,
        index: Dict[str, List[NetworkRule]],
        rest: List[NetworkRule],
        page_domain: str,
        resource_type: str,
        third_party: Optional[bool],
    ) -> Optional[NetworkRule]:
        for rule in self._candidates(url, index, rest):
            if rule.matches(url, page_domain, resource_type, third_party):
                return rule
        return None

    def match(
        self,
        url: str,
        page_domain: str = "",
        resource_type: str = "other",
        third_party: Optional[bool] = None,
    ) -> MatchResult:
        """Adblocker semantics: blocked unless an exception rule applies."""
        blocking = self._first(
            url, self._block_index, self._block_rest, page_domain, resource_type, third_party
        )
        if blocking is None:
            return MatchResult(blocked=False)
        allowing = self._first(
            url, self._allow_index, self._allow_rest, page_domain, resource_type, third_party
        )
        if allowing is not None:
            return MatchResult(blocked=False, rule=blocking, exception=allowing)
        return MatchResult(blocked=True, rule=blocking)

    def first_match(
        self,
        url: str,
        page_domain: str = "",
        resource_type: str = "other",
        third_party: Optional[bool] = None,
    ) -> Optional[NetworkRule]:
        """First rule of either polarity that triggers on the URL.

        This is the *coverage* notion used in §4: a website is labelled
        anti-adblocking when any of its request URLs matches any HTTP rule
        of the anti-adblock filter list, exception rules included (an
        exception rule firing means the list had to special-case that
        site's anti-adblock bait).
        """
        blocking = self._first(
            url, self._block_index, self._block_rest, page_domain, resource_type, third_party
        )
        if blocking is not None:
            return blocking
        return self._first(
            url, self._allow_index, self._allow_rest, page_domain, resource_type, third_party
        )
