"""URL matching engine over a set of network rules.

Mirrors how real adblockers evaluate requests: exception (``@@``) rules
dominate blocking rules, and rules are indexed by a literal token so a
request only probes a small candidate subset rather than every rule (the
classic keyword-index trick from Adblock Plus).

Two properties matter for the §4 replay engine:

- **Incremental construction.** Consecutive filter-list revisions share
  almost all rules, so :meth:`NetworkMatcher.apply_delta` derives revision
  N+1's matcher from revision N's by editing the token index in place of a
  shallow copy, instead of re-tokenizing the full rule set. The index
  token of a rule is a pure function of the rule (its longest literal
  token), so an incrementally-derived matcher indexes every rule exactly
  where a from-scratch build would.
- **Profile fast path.** ``match_profile``/``first_match_profile`` accept
  a precomputed :class:`~repro.analysis.profile.UrlProfile` (duck-typed:
  ``url``/``tokens``/``resource_type``/``third_party``) so URL
  tokenization and third-party/resource-type derivation happen once per
  crawl record rather than once per (list × revision × pass).
"""

from __future__ import annotations

import re
from functools import lru_cache
from time import perf_counter_ns
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .rules import NetworkRule

_TOKEN_RE = re.compile(r"[a-z0-9]{3,}")

#: Tokens too common to discriminate; never used as index keys.
_STOP_TOKENS = frozenset(
    {"http", "https", "www", "com", "net", "org", "html", "index", "js", "css"}
)


@lru_cache(maxsize=65536)
def _tokens_of_pattern(pattern: str) -> Tuple[str, ...]:
    """Literal tokens of an ABP pattern (cached — patterns repeat across
    revisions, so a full history tokenizes each distinct pattern once)."""
    tokens: List[str] = []
    for chunk in re.split(r"[*^|]", pattern.lower()):
        tokens.extend(_TOKEN_RE.findall(chunk))
    return tuple(t for t in tokens if t not in _STOP_TOKENS)


def _pattern_tokens(rule: NetworkRule) -> Tuple[str, ...]:
    """Candidate index tokens: literal runs of the pattern, no wildcards."""
    if rule.is_regex:
        return ()
    return _tokens_of_pattern(rule.pattern)


def index_token(rule: NetworkRule) -> Optional[str]:
    """The token a rule is indexed under, or ``None`` for the rest bucket.

    Chosen as the *longest* literal token (first wins on ties): a pure
    per-rule function, so incremental and from-scratch builds agree, and
    long tokens (host names, script paths) keep buckets small without a
    corpus-wide frequency pass.
    """
    tokens = _pattern_tokens(rule)
    if not tokens:
        return None
    return max(tokens, key=len)


@lru_cache(maxsize=65536)
def url_tokens(url: str) -> Tuple[str, ...]:
    """Index tokens of a request URL (cached; also used by profiles)."""
    return tuple(_TOKEN_RE.findall(url.lower()))


class MatchResult:
    """Outcome of matching one URL against the engine."""

    __slots__ = ("blocked", "rule", "exception")

    def __init__(
        self,
        blocked: bool,
        rule: Optional[NetworkRule] = None,
        exception: Optional[NetworkRule] = None,
    ) -> None:
        self.blocked = blocked
        self.rule = rule
        self.exception = exception

    def __bool__(self) -> bool:
        return self.blocked

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatchResult(blocked={self.blocked!r}, rule={self.rule!r}, "
            f"exception={self.exception!r})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, MatchResult):
            return NotImplemented
        return (
            self.blocked == other.blocked
            and self.rule == other.rule
            and self.exception == other.exception
        )


class NetworkMatcher:
    """Token-indexed matcher over network rules.

    ``match`` answers the adblocker question — is this request blocked? —
    while ``first_match`` answers the measurement question used throughout
    §4 — does *any* rule (blocking or exception) trigger on this URL?

    ``stats`` is an optional counters object (duck-typed with
    ``match_calls`` and ``candidates_probed`` attributes, e.g.
    :class:`repro.analysis.perf.PerfCounters`); when set, every call
    reports how many candidate rules it probed.

    ``rule_stats`` is an optional per-rule sink (duck-typed as
    :class:`repro.analysis.rulestats.ScopedRuleStats`): when set, every
    call additionally records which rules were probed, which rule hit,
    and the call's latency. ``None`` (the default) costs exactly one
    attribute check per call — the ``NULL_SPAN`` discipline.
    """

    def __init__(self, rules: Iterable[NetworkRule] = (), stats=None) -> None:
        self._block_index: Dict[str, List[NetworkRule]] = {}
        self._allow_index: Dict[str, List[NetworkRule]] = {}
        self._block_rest: List[NetworkRule] = []
        self._allow_rest: List[NetworkRule] = []
        self._count = 0
        self.stats = stats
        self.rule_stats = None
        for rule in rules:
            self.add_rule(rule)

    def __len__(self) -> int:
        return self._count

    # -- incremental construction -------------------------------------------

    def add_rule(self, rule: NetworkRule) -> None:
        """Insert one rule into the token index."""
        self._count += 1
        token = index_token(rule)
        if rule.is_exception:
            index, rest = self._allow_index, self._allow_rest
        else:
            index, rest = self._block_index, self._block_rest
        if token is not None:
            index.setdefault(token, []).append(rule)
        else:
            rest.append(rule)

    def remove_rule(self, rule: NetworkRule) -> bool:
        """Remove one rule (by equality); returns whether it was present."""
        token = index_token(rule)
        if rule.is_exception:
            index, rest = self._allow_index, self._allow_rest
        else:
            index, rest = self._block_index, self._block_rest
        bucket = index.get(token) if token is not None else rest
        if not bucket:
            return False
        try:
            bucket.remove(rule)
        except ValueError:
            return False
        if token is not None and not bucket:
            del index[token]
        self._count -= 1
        return True

    def copy(self) -> "NetworkMatcher":
        """A structural copy sharing rule objects but not index buckets."""
        clone = NetworkMatcher(stats=self.stats)
        clone.rule_stats = self.rule_stats
        clone._block_index = {t: list(rs) for t, rs in self._block_index.items()}
        clone._allow_index = {t: list(rs) for t, rs in self._allow_index.items()}
        clone._block_rest = list(self._block_rest)
        clone._allow_rest = list(self._allow_rest)
        clone._count = self._count
        return clone

    def apply_delta(
        self,
        added: Iterable[NetworkRule],
        removed: Iterable[NetworkRule],
    ) -> "NetworkMatcher":
        """A new matcher with ``removed`` rules dropped and ``added`` rules
        appended — O(delta) instead of O(rules) tokenization work.

        The receiver is left untouched (revision matchers are cached and
        must stay valid), but rule objects are shared between the two.
        """
        derived = self.copy()
        for rule in removed:
            derived.remove_rule(rule)
        for rule in added:
            derived.add_rule(rule)
        return derived

    def rules(self) -> List[NetworkRule]:
        """Every indexed rule (bucket order; for tests and introspection)."""
        collected: List[NetworkRule] = []
        for index in (self._block_index, self._allow_index):
            for bucket in index.values():
                collected.extend(bucket)
        collected.extend(self._block_rest)
        collected.extend(self._allow_rest)
        return collected

    # -- candidate generation -----------------------------------------------

    @staticmethod
    def _url_tokens(url: str) -> Tuple[str, ...]:
        return url_tokens(url)

    def _candidates(
        self,
        tokens: Tuple[str, ...],
        index: Dict[str, List[NetworkRule]],
        rest: List[NetworkRule],
    ) -> Iterator[NetworkRule]:
        seen_buckets = set()
        for token in tokens:
            bucket = index.get(token)
            if bucket is not None and token not in seen_buckets:
                seen_buckets.add(token)
                yield from bucket
        yield from rest

    def _first(
        self,
        url: str,
        tokens: Tuple[str, ...],
        index: Dict[str, List[NetworkRule]],
        rest: List[NetworkRule],
        page_domain: str,
        resource_type: str,
        third_party: Optional[bool],
    ) -> Optional[NetworkRule]:
        rule_stats = self.rule_stats
        if rule_stats is not None:
            return self._first_recorded(
                rule_stats, url, tokens, index, rest,
                page_domain, resource_type, third_party,
            )
        probed = 0
        hit: Optional[NetworkRule] = None
        for rule in self._candidates(tokens, index, rest):
            probed += 1
            if rule.matches(url, page_domain, resource_type, third_party):
                hit = rule
                break
        stats = self.stats
        if stats is not None:
            stats.match_calls += 1
            stats.candidates_probed += probed
        return hit

    def _first_recorded(
        self,
        rule_stats,
        url: str,
        tokens: Tuple[str, ...],
        index: Dict[str, List[NetworkRule]],
        rest: List[NetworkRule],
        page_domain: str,
        resource_type: str,
        third_party: Optional[bool],
    ) -> Optional[NetworkRule]:
        """``_first`` with per-rule accounting (the stats-on slow path).

        Candidate order is identical to ``_first``'s, so the winning
        rule — and therefore every experiment artifact — is unchanged;
        only the bookkeeping differs.
        """
        started = perf_counter_ns()
        probed = 0
        hit: Optional[NetworkRule] = None
        checks = rule_stats.checks
        for rule in self._candidates(tokens, index, rest):
            probed += 1
            raw = rule.raw
            checks[raw] = checks.get(raw, 0) + 1
            if rule.matches(url, page_domain, resource_type, third_party):
                hit = rule
                break
        stats = self.stats
        if stats is not None:
            stats.match_calls += 1
            stats.candidates_probed += probed
        rule_stats.record_call(probed, perf_counter_ns() - started, hit)
        return hit

    # -- raw-URL API ---------------------------------------------------------

    def match(
        self,
        url: str,
        page_domain: str = "",
        resource_type: str = "other",
        third_party: Optional[bool] = None,
    ) -> MatchResult:
        """Adblocker semantics: blocked unless an exception rule applies."""
        return self._match_tokens(
            url, url_tokens(url), page_domain, resource_type, third_party
        )

    def first_match(
        self,
        url: str,
        page_domain: str = "",
        resource_type: str = "other",
        third_party: Optional[bool] = None,
    ) -> Optional[NetworkRule]:
        """First rule of either polarity that triggers on the URL.

        This is the *coverage* notion used in §4: a website is labelled
        anti-adblocking when any of its request URLs matches any HTTP rule
        of the anti-adblock filter list, exception rules included (an
        exception rule firing means the list had to special-case that
        site's anti-adblock bait).
        """
        return self._first_match_tokens(
            url, url_tokens(url), page_domain, resource_type, third_party
        )

    # -- profile fast path ----------------------------------------------------

    def match_profile(self, profile, page_domain: str = "") -> MatchResult:
        """``match`` over a precomputed URL profile (no re-tokenization)."""
        return self._match_tokens(
            profile.url,
            profile.tokens,
            page_domain,
            profile.resource_type,
            profile.third_party,
        )

    def first_match_profile(
        self, profile, page_domain: str = ""
    ) -> Optional[NetworkRule]:
        """``first_match`` over a precomputed URL profile."""
        return self._first_match_tokens(
            profile.url,
            profile.tokens,
            page_domain,
            profile.resource_type,
            profile.third_party,
        )

    # -- shared internals ------------------------------------------------------

    def _match_tokens(
        self,
        url: str,
        tokens: Tuple[str, ...],
        page_domain: str,
        resource_type: str,
        third_party: Optional[bool],
    ) -> MatchResult:
        blocking = self._first(
            url, tokens, self._block_index, self._block_rest,
            page_domain, resource_type, third_party,
        )
        if blocking is None:
            return MatchResult(blocked=False)
        allowing = self._first(
            url, tokens, self._allow_index, self._allow_rest,
            page_domain, resource_type, third_party,
        )
        if allowing is not None:
            return MatchResult(blocked=False, rule=blocking, exception=allowing)
        return MatchResult(blocked=True, rule=blocking)

    def _first_match_tokens(
        self,
        url: str,
        tokens: Tuple[str, ...],
        page_domain: str,
        resource_type: str,
        third_party: Optional[bool],
    ) -> Optional[NetworkRule]:
        blocking = self._first(
            url, tokens, self._block_index, self._block_rest,
            page_domain, resource_type, third_party,
        )
        if blocking is not None:
            return blocking
        return self._first(
            url, tokens, self._allow_index, self._allow_rest,
            page_domain, resource_type, third_party,
        )
