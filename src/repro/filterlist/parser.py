"""Parsing whole filter-list documents.

A filter list is a text file: a ``[Adblock Plus …]`` header, ``!`` comment
lines (some of which are section markers), and one rule per line. EasyList
organises its rules into sections delimited by
``!---------- section name ----------!`` comments; the paper analyses only
the anti-adblock sections of EasyList, so the parser keeps track of which
section every rule came from.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Union

from .rules import ElementRule, NetworkRule, RuleParseError, parse_rule

Rule = Union[NetworkRule, ElementRule]

_SECTION_RE = re.compile(r"^!\s*-{2,}\s*(?P<name>.*?)\s*-{2,}\s*!?\s*$")
_METADATA_RE = re.compile(r"^!\s*(?P<key>[A-Za-z][\w ]*?)\s*:\s*(?P<value>.+)$")


@dataclass
class ParsedRule:
    """A rule plus its position and section inside the source document."""

    rule: Rule
    line_number: int
    section: str = ""


@dataclass
class FilterList:
    """A parsed filter-list document."""

    name: str = ""
    rules: List[ParsedRule] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[ParsedRule]:
        return iter(self.rules)

    @property
    def network_rules(self) -> List[NetworkRule]:
        """The document's HTTP request rules."""
        return [pr.rule for pr in self.rules if isinstance(pr.rule, NetworkRule)]

    @property
    def element_rules(self) -> List[ElementRule]:
        """The document's element-hiding rules."""
        return [pr.rule for pr in self.rules if isinstance(pr.rule, ElementRule)]

    def sections(self) -> List[str]:
        """Distinct section names in document order."""
        seen = []
        for parsed in self.rules:
            if parsed.section not in seen:
                seen.append(parsed.section)
        return seen

    def section_rules(self, *section_names: str) -> "FilterList":
        """A sub-list containing only rules from the named sections.

        Section names are matched case-insensitively as substrings, which is
        how one selects e.g. every EasyList section whose name mentions
        "adblock" (the paper's *anti-adblock sections of EasyList*).
        """
        wanted = [name.lower() for name in section_names]
        picked = [
            parsed
            for parsed in self.rules
            if any(w in parsed.section.lower() for w in wanted)
        ]
        return FilterList(name=self.name, rules=picked, metadata=dict(self.metadata))

    def rule_lines(self) -> List[str]:
        """Raw rule text lines in document order."""
        return [parsed.rule.raw for parsed in self.rules]


def parse_filter_list(text: str, name: str = "", strict: bool = False) -> FilterList:
    """Parse a filter-list document into a :class:`FilterList`.

    Malformed lines are recorded in ``errors`` and skipped unless
    ``strict`` is true, matching how real adblockers tolerate bad rules.
    """
    result = FilterList(name=name)
    section = ""
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("["):
            result.metadata.setdefault("header", line.strip("[]"))
            continue
        if line.startswith("!"):
            section_match = _SECTION_RE.match(line)
            if section_match:
                section = section_match.group("name")
                continue
            metadata_match = _METADATA_RE.match(line)
            if metadata_match:
                key = metadata_match.group("key").strip().lower()
                result.metadata[key] = metadata_match.group("value").strip()
            continue
        try:
            rule = parse_rule(line)
        except RuleParseError as exc:
            if strict:
                raise
            result.errors.append(f"line {line_number}: {exc}")
            continue
        result.rules.append(ParsedRule(rule=rule, line_number=line_number, section=section))
    return result


def serialize_filter_list(
    filter_list: FilterList, title: Optional[str] = None
) -> str:
    """Render a :class:`FilterList` back to filter-list text."""
    lines = ["[Adblock Plus 2.0]"]
    if title or filter_list.name:
        lines.append(f"! Title: {title or filter_list.name}")
    for key, value in filter_list.metadata.items():
        if key in ("header", "title"):
            continue
        lines.append(f"! {key.capitalize()}: {value}")
    current_section = None
    for parsed in filter_list.rules:
        if parsed.section != current_section:
            current_section = parsed.section
            if current_section:
                lines.append(f"!-------------- {current_section} --------------!")
        lines.append(parsed.rule.raw)
    return "\n".join(lines) + "\n"
