"""Parsing whole filter-list documents.

A filter list is a text file: a ``[Adblock Plus …]`` header, ``!`` comment
lines (some of which are section markers), and one rule per line. EasyList
organises its rules into sections delimited by
``!---------- section name ----------!`` comments; the paper analyses only
the anti-adblock sections of EasyList, so the parser keeps track of which
section every rule came from.

The §3 history engine parses *every revision* of every list, and real
churn is a handful of lines per revision (the paper: ~4 rules/day for
AAK) — so almost every line of almost every revision has been seen
before. :class:`ParsedRuleCache` is the process-global content-addressed
cache that exploits this: each distinct rule line is parsed, classified
(Figure 1 type), and domain-extracted exactly once, no matter how many
revisions or lists it appears in. The cache is bounded like the §5
feature store's memo (``REPRO_HISTORY_CACHE``, LRU), and its hit/parse
counters feed the ``history.*`` namespace of the metrics registry via
:class:`HistoryCounters`.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from dataclasses import dataclass, field, fields
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..obs.config import history_cache_size
from ..obs.metrics import get_metrics
from .classify import RuleType, classify_rule
from .rules import ElementRule, NetworkRule, RuleParseError, parse_rule

Rule = Union[NetworkRule, ElementRule]

_SECTION_RE = re.compile(r"^!\s*-{2,}\s*(?P<name>.*?)\s*-{2,}\s*!?\s*$")
_METADATA_RE = re.compile(r"^!\s*(?P<key>[A-Za-z][\w ]*?)\s*:\s*(?P<value>.+)$")


# -- the §3 history counters -------------------------------------------------------


@dataclass
class HistoryCounters:
    """Counters for the incremental §3 history engine (``history.*``).

    Mirrors :class:`~repro.analysis.perf.PerfCounters`' shape so sharded
    history folds can report deltas that merge deterministically, and the
    registry absorption (`history.cache_hits` etc.) works the same way as
    the replay engine's.
    """

    #: rule-line lookups answered by the parsed-rule cache
    cache_hits: int = 0
    #: rule lines actually parsed + classified (cache misses)
    lines_parsed: int = 0
    #: revisions consumed by a streaming delta fold
    revisions_folded: int = 0
    #: fold steps served straight from a stored :class:`RevisionDelta`
    #: (O(churn)) rather than a full line scan
    delta_folds: int = 0
    #: delta-backed revisions expanded into full parsed documents
    revisions_materialized: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def snapshot(self) -> tuple:
        """A point-in-time copy of every counter (for :meth:`since`)."""
        return tuple(getattr(self, f.name) for f in fields(self))

    def since(self, snap: tuple) -> "HistoryCounters":
        """Counters accumulated after ``snap`` was taken (shard deltas)."""
        delta = HistoryCounters()
        for f, before in zip(fields(self), snap):
            setattr(delta, f.name, getattr(self, f.name) - before)
        return delta

    def merge(self, other: "HistoryCounters") -> None:
        """Fold another shard's counters into this one (plain sums)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


#: Process-global history counters; sharded folds merge worker deltas in.
HISTORY_COUNTERS = HistoryCounters()


def get_history_counters() -> HistoryCounters:
    """The process-global §3 history counters."""
    return HISTORY_COUNTERS


def count_history(name: str, delta: int = 1) -> None:
    """Bump one history counter and its ``history.*`` registry mirror."""
    if delta:
        setattr(HISTORY_COUNTERS, name, getattr(HISTORY_COUNTERS, name) + delta)
        get_metrics().count(f"history.{name}", delta)


# -- the parsed-rule cache ---------------------------------------------------------


class ParsedLine:
    """Everything the history engine ever derives from one rule line.

    ``rule`` is ``None`` for lines that fail to parse (``error`` holds the
    parse error's text, position-free so it is shareable across
    documents). ``rule_type`` is the line's Figure 1 category; targeted
    domains are extracted lazily and cached, so the §3.3 first-appearance
    fold runs the anchor-host regex once per distinct line.
    """

    __slots__ = ("rule", "error", "rule_type", "_domains")

    def __init__(
        self,
        rule: Optional[Rule],
        error: Optional[str] = None,
        rule_type: Optional[RuleType] = None,
    ) -> None:
        self.rule = rule
        self.error = error
        self.rule_type = rule_type
        self._domains: Optional[Tuple[str, ...]] = None

    def targeted_domains(self) -> Tuple[str, ...]:
        """The line's targeted domains (computed once, then cached)."""
        if self._domains is None:
            self._domains = (
                tuple(self.rule.targeted_domains()) if self.rule is not None else ()
            )
        return self._domains


class ParsedRuleCache:
    """Bounded content-addressed cache: rule line → :class:`ParsedLine`.

    LRU-bounded like the feature store's memo so a paper-scale run holds
    a fixed number of parsed rules no matter how many revisions stream
    through. Not thread-safe (the fork pool gives each worker its own
    copy-on-write view; workers only read entries the parent already
    interned or add their own).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        capacity = history_cache_size() if capacity is None else int(capacity)
        if capacity < 1:
            raise ValueError("parsed-rule cache capacity must be >= 1")
        self.capacity = capacity
        self._data: "OrderedDict[str, ParsedLine]" = OrderedDict()
        #: lifetime tallies (flushed into :data:`HISTORY_COUNTERS` in
        #: batches by the call sites, so the hot loop stays dict-only)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def lookup(self, line: str) -> ParsedLine:
        """The cached parse of ``line`` (parsing and classifying on miss)."""
        entry = self._data.get(line)
        if entry is not None:
            self.hits += 1
            self._data.move_to_end(line)
            return entry
        self.misses += 1
        try:
            rule = parse_rule(line)
        except RuleParseError as exc:
            entry = ParsedLine(None, error=str(exc))
        else:
            entry = ParsedLine(rule, rule_type=classify_rule(rule))
        self._data[line] = entry
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
        return entry

    def flush_counts(self, since_hits: int, since_misses: int) -> None:
        """Report tallies accumulated past the given baselines."""
        count_history("cache_hits", self.hits - since_hits)
        count_history("lines_parsed", self.misses - since_misses)


#: The process-wide cache (created on first use from ``REPRO_HISTORY_CACHE``).
_RULE_CACHE: Optional[ParsedRuleCache] = None


def get_rule_cache() -> ParsedRuleCache:
    """The shared parsed-rule cache.

    Process-wide by design: every list history — AAK, EasyList, AWRL,
    the Combined EasyList built from the latter two — shares one cache,
    so a rule line appearing in any number of revisions of any number of
    lists is parsed and classified exactly once per process.
    """
    global _RULE_CACHE
    if _RULE_CACHE is None:
        _RULE_CACHE = ParsedRuleCache()
    return _RULE_CACHE


def set_rule_cache(cache: Optional[ParsedRuleCache]) -> Optional[ParsedRuleCache]:
    """Swap the shared cache (tests/benchmarks); returns the previous one."""
    global _RULE_CACHE
    previous, _RULE_CACHE = _RULE_CACHE, cache
    return previous


@dataclass
class ParsedRule:
    """A rule plus its position and section inside the source document."""

    rule: Rule
    line_number: int
    section: str = ""


@dataclass
class FilterList:
    """A parsed filter-list document."""

    name: str = ""
    rules: List[ParsedRule] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[ParsedRule]:
        return iter(self.rules)

    @property
    def network_rules(self) -> List[NetworkRule]:
        """The document's HTTP request rules."""
        return [pr.rule for pr in self.rules if isinstance(pr.rule, NetworkRule)]

    @property
    def element_rules(self) -> List[ElementRule]:
        """The document's element-hiding rules."""
        return [pr.rule for pr in self.rules if isinstance(pr.rule, ElementRule)]

    def sections(self) -> List[str]:
        """Distinct section names in document order."""
        seen = []
        for parsed in self.rules:
            if parsed.section not in seen:
                seen.append(parsed.section)
        return seen

    def section_rules(self, *section_names: str) -> "FilterList":
        """A sub-list containing only rules from the named sections.

        Section names are matched case-insensitively as substrings, which is
        how one selects e.g. every EasyList section whose name mentions
        "adblock" (the paper's *anti-adblock sections of EasyList*).
        """
        wanted = [name.lower() for name in section_names]
        picked = [
            parsed
            for parsed in self.rules
            if any(w in parsed.section.lower() for w in wanted)
        ]
        return FilterList(name=self.name, rules=picked, metadata=dict(self.metadata))

    def rule_lines(self) -> List[str]:
        """Raw rule text lines in document order."""
        return [parsed.rule.raw for parsed in self.rules]


def parse_filter_list(
    text: str, name: str = "", strict: bool = False, cache: bool = True
) -> FilterList:
    """Parse a filter-list document into a :class:`FilterList`.

    Malformed lines are recorded in ``errors`` and skipped unless
    ``strict`` is true, matching how real adblockers tolerate bad rules.

    Rule lines go through the process-global :class:`ParsedRuleCache`, so
    a line shared between revisions (the overwhelmingly common case in a
    §3 history) is parsed once per process. ``cache=False`` parses every
    line from scratch — the reference path, kept for the history
    benchmark's full-reparse baseline.
    """
    result = FilterList(name=name)
    section = ""
    rule_cache = get_rule_cache() if cache else None
    if rule_cache is not None:
        hits_before, misses_before = rule_cache.hits, rule_cache.misses
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("["):
            result.metadata.setdefault("header", line.strip("[]"))
            continue
        if line.startswith("!"):
            section_match = _SECTION_RE.match(line)
            if section_match:
                section = section_match.group("name")
                continue
            metadata_match = _METADATA_RE.match(line)
            if metadata_match:
                key = metadata_match.group("key").strip().lower()
                result.metadata[key] = metadata_match.group("value").strip()
            continue
        if rule_cache is not None:
            entry = rule_cache.lookup(line)
            if entry.rule is None:
                if strict:
                    rule_cache.flush_counts(hits_before, misses_before)
                    raise RuleParseError(entry.error)
                result.errors.append(f"line {line_number}: {entry.error}")
                continue
            result.rules.append(
                ParsedRule(rule=entry.rule, line_number=line_number, section=section)
            )
            continue
        try:
            rule = parse_rule(line)
        except RuleParseError as exc:
            if strict:
                raise
            result.errors.append(f"line {line_number}: {exc}")
            continue
        result.rules.append(ParsedRule(rule=rule, line_number=line_number, section=section))
    if rule_cache is not None:
        rule_cache.flush_counts(hits_before, misses_before)
    return result


def serialize_filter_list(
    filter_list: FilterList, title: Optional[str] = None
) -> str:
    """Render a :class:`FilterList` back to filter-list text."""
    lines = ["[Adblock Plus 2.0]"]
    if title or filter_list.name:
        lines.append(f"! Title: {title or filter_list.name}")
    for key, value in filter_list.metadata.items():
        if key in ("header", "title"):
            continue
        lines.append(f"! {key.capitalize()}: {value}")
    current_section = None
    for parsed in filter_list.rules:
        if parsed.section != current_section:
            current_section = parsed.section
            if current_section:
                lines.append(f"!-------------- {current_section} --------------!")
        lines.append(parsed.rule.raw)
    return "\n".join(lines) + "\n"
