"""On-disk data repository for crawl artifacts (Figure 4's last box).

The paper's crawler "stores all HTTP requests/responses in a HAR file and
the page content in an HTML file". This module persists a
:class:`~repro.wayback.crawler.CrawlResult` the same way —
``<root>/<domain>/<YYYY-MM>.har`` + ``.html`` plus an index of slot
statuses — and loads it back, so expensive crawls can be archived,
shipped, and re-analysed without re-crawling.
"""

from __future__ import annotations

import json
from datetime import date
from pathlib import Path
from typing import Dict, Iterator, Union

from ..web.har import HarFile
from .crawler import CrawlRecord, CrawlResult, CrawlStatus

INDEX_NAME = "crawl-index.json"


class DataRepository:
    """A directory tree of HAR/HTML crawl artifacts."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- paths -----------------------------------------------------------------

    def _slot_base(self, domain: str, month: date) -> Path:
        return self.root / domain / f"{month.year:04d}-{month.month:02d}"

    def har_path(self, domain: str, month: date) -> Path:
        """On-disk path of a slot's HAR file."""
        return self._slot_base(domain, month).with_suffix(".har")

    def html_path(self, domain: str, month: date) -> Path:
        """On-disk path of a slot's HTML file."""
        return self._slot_base(domain, month).with_suffix(".html")

    @property
    def index_path(self) -> Path:
        """Path of the crawl index JSON."""
        return self.root / INDEX_NAME

    # -- saving ---------------------------------------------------------------

    def save(self, result: CrawlResult) -> int:
        """Persist a crawl; returns the number of usable slots written."""
        self.root.mkdir(parents=True, exist_ok=True)
        index = []
        written = 0
        for record in result.records:
            entry = {
                "domain": record.domain,
                "month": record.month.isoformat(),
                "status": record.status.value,
                "capture_date": (
                    record.capture_date.isoformat() if record.capture_date else None
                ),
            }
            index.append(entry)
            if not record.usable or record.har is None:
                continue
            base = self._slot_base(record.domain, record.month)
            base.parent.mkdir(parents=True, exist_ok=True)
            self.har_path(record.domain, record.month).write_text(
                record.har.to_json(), encoding="utf-8"
            )
            if record.html:
                self.html_path(record.domain, record.month).write_text(
                    record.html, encoding="utf-8"
                )
            written += 1
        self.index_path.write_text(
            json.dumps({"records": index}, indent=1), encoding="utf-8"
        )
        return written

    # -- loading ---------------------------------------------------------------

    def load(self) -> CrawlResult:
        """Rebuild the :class:`CrawlResult` from disk."""
        if not self.index_path.exists():
            raise FileNotFoundError(f"no crawl index at {self.index_path}")
        raw = json.loads(self.index_path.read_text(encoding="utf-8"))
        result = CrawlResult()
        for entry in raw["records"]:
            domain = entry["domain"]
            month = date.fromisoformat(entry["month"])
            status = CrawlStatus(entry["status"])
            record = CrawlRecord(
                domain=domain,
                month=month,
                status=status,
                capture_date=(
                    date.fromisoformat(entry["capture_date"])
                    if entry.get("capture_date")
                    else None
                ),
            )
            if status is CrawlStatus.OK:
                har_file = self.har_path(domain, month)
                if har_file.exists():
                    record.har = HarFile.from_json(har_file.read_text(encoding="utf-8"))
                html_file = self.html_path(domain, month)
                if html_file.exists():
                    record.html = html_file.read_text(encoding="utf-8")
            result.records.append(record)
        return result

    def iter_hars(self) -> Iterator[HarFile]:
        """Stream every stored HAR (for corpus building over a saved crawl)."""
        for har_file in sorted(self.root.glob("*/*.har")):
            yield HarFile.from_json(har_file.read_text(encoding="utf-8"))

    def stats(self) -> Dict[str, int]:
        """Quick inventory of the repository."""
        hars = sum(1 for _ in self.root.glob("*/*.har"))
        htmls = sum(1 for _ in self.root.glob("*/*.html"))
        domains = sum(1 for p in self.root.iterdir() if p.is_dir()) if self.root.exists() else 0
        return {"domains": domains, "har_files": hars, "html_files": htmls}
