"""On-disk data repository for crawl artifacts (Figure 4's last box).

The paper's crawler "stores all HTTP requests/responses in a HAR file and
the page content in an HTML file". This module persists a
:class:`~repro.wayback.crawler.CrawlResult` the same way —
``<root>/<domain>/<YYYY-MM>.har`` + ``.html`` plus an index of slot
statuses — and loads it back, so expensive crawls can be archived,
shipped, and re-analysed without re-crawling.

Two readback paths exist. :meth:`DataRepository.load` rebuilds full
records (HAR objects included) by parsing the HAR JSON. With the data
plane on (``REPRO_DATA_PLANE=1``), :meth:`DataRepository.save` also
packs every request into one columnar mmap-able table
(:mod:`repro.dataplane.requests`), and :meth:`DataRepository.load_replay`
rebuilds *replay-ready* records from it — truncated request URLs
precomputed, no HAR JSON parsed — which is all the §4 coverage replay
reads. Both paths feed :class:`~repro.analysis.coverage.CoverageAnalyzer`
to digest-identical results.
"""

from __future__ import annotations

import json
import os
from datetime import date
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from ..dataplane.requests import TABLE_NAME, RequestTable, write_request_table
from ..obs.config import data_plane_enabled
from ..web.har import HarFile
from .crawler import CrawlRecord, CrawlResult, CrawlStatus
from .rewrite import truncate_wayback

INDEX_NAME = "crawl-index.json"


class DataRepository:
    """A directory tree of HAR/HTML crawl artifacts."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- paths -----------------------------------------------------------------

    def _slot_base(self, domain: str, month: date) -> Path:
        return self.root / domain / f"{month.year:04d}-{month.month:02d}"

    def har_path(self, domain: str, month: date) -> Path:
        """On-disk path of a slot's HAR file."""
        return self._slot_base(domain, month).with_suffix(".har")

    def html_path(self, domain: str, month: date) -> Path:
        """On-disk path of a slot's HTML file."""
        return self._slot_base(domain, month).with_suffix(".html")

    @property
    def index_path(self) -> Path:
        """Path of the crawl index JSON."""
        return self.root / INDEX_NAME

    @property
    def table_path(self) -> Path:
        """Path of the packed columnar request table (data-plane mode)."""
        return self.root / TABLE_NAME

    # -- saving ---------------------------------------------------------------

    def save(self, result: CrawlResult, request_table: Optional[bool] = None) -> int:
        """Persist a crawl; returns the number of usable slots written.

        ``request_table`` (default: the ``REPRO_DATA_PLANE`` knob) also
        packs every request into the columnar table
        :meth:`load_replay` reads. The index is published atomically
        (tmp file + rename), so a crash mid-save can orphan slot files
        but never corrupt an existing index.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        index = []
        written = 0
        for record in result.records:
            entry = {
                "domain": record.domain,
                "month": record.month.isoformat(),
                "status": record.status.value,
                "capture_date": (
                    record.capture_date.isoformat() if record.capture_date else None
                ),
            }
            index.append(entry)
            if not record.usable or record.har is None:
                continue
            base = self._slot_base(record.domain, record.month)
            base.parent.mkdir(parents=True, exist_ok=True)
            self.har_path(record.domain, record.month).write_text(
                record.har.to_json(), encoding="utf-8"
            )
            if record.html:
                self.html_path(record.domain, record.month).write_text(
                    record.html, encoding="utf-8"
                )
            written += 1
        if data_plane_enabled() if request_table is None else request_table:
            write_request_table(self.table_path, result)
        tmp = self.index_path.with_name(f"{INDEX_NAME}.tmp{os.getpid()}")
        tmp.write_text(
            json.dumps({"records": index}, indent=1), encoding="utf-8"
        )
        os.replace(tmp, self.index_path)  # atomic publish
        return written

    # -- loading ---------------------------------------------------------------

    def _read_index(self) -> list:
        if not self.index_path.exists():
            raise FileNotFoundError(f"no crawl index at {self.index_path}")
        try:
            raw = json.loads(self.index_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValueError(
                f"corrupt crawl index at {self.index_path}: {exc}"
            ) from exc
        if not isinstance(raw, dict) or not isinstance(raw.get("records"), list):
            raise ValueError(
                f"corrupt crawl index at {self.index_path}: no 'records' list"
            )
        return raw["records"]

    @staticmethod
    def _index_record(entry: Dict) -> CrawlRecord:
        return CrawlRecord(
            domain=entry["domain"],
            month=date.fromisoformat(entry["month"]),
            status=CrawlStatus(entry["status"]),
            capture_date=(
                date.fromisoformat(entry["capture_date"])
                if entry.get("capture_date")
                else None
            ),
        )

    def load(self) -> CrawlResult:
        """Rebuild the :class:`CrawlResult` from disk (HAR JSON parsed)."""
        result = CrawlResult()
        for entry in self._read_index():
            record = self._index_record(entry)
            if record.status is CrawlStatus.OK:
                har_file = self.har_path(record.domain, record.month)
                if har_file.exists():
                    record.har = HarFile.from_json(har_file.read_text(encoding="utf-8"))
                html_file = self.html_path(record.domain, record.month)
                if html_file.exists():
                    record.html = html_file.read_text(encoding="utf-8")
            result.records.append(record)
        return result

    def load_replay(self) -> CrawlResult:
        """Rebuild replay-ready records from the packed request table.

        Records carry no HAR objects; their truncated request URLs come
        straight from the columnar table (the only thing the §4 replay
        reads from a HAR), so no HAR JSON is parsed. Requires a
        repository saved with the request table; falls back to
        :meth:`load` when the table is absent.
        """
        if not self.table_path.exists():
            return self.load()
        result = CrawlResult()
        with RequestTable(self.table_path) as table:
            for entry in self._read_index():
                record = self._index_record(entry)
                if record.status is CrawlStatus.OK:
                    key = (record.domain, record.month)
                    record._truncated_urls = (
                        [
                            truncate_wayback(url)
                            for url in table.request_urls(*key)
                        ]
                        if key in table
                        else []
                    )
                    html_file = self.html_path(record.domain, record.month)
                    if html_file.exists():
                        record.html = html_file.read_text(encoding="utf-8")
                result.records.append(record)
        return result

    def iter_hars(self) -> Iterator[HarFile]:
        """Stream every stored HAR (for corpus building over a saved crawl)."""
        for har_file in sorted(self.root.glob("*/*.har")):
            yield HarFile.from_json(har_file.read_text(encoding="utf-8"))

    def stats(self) -> Dict[str, int]:
        """Quick inventory of the repository."""
        hars = sum(1 for _ in self.root.glob("*/*.har"))
        htmls = sum(1 for _ in self.root.glob("*/*.html"))
        domains = sum(1 for p in self.root.iterdir() if p.is_dir()) if self.root.exists() else 0
        return {"domains": domains, "har_files": hars, "html_files": htmls}
