"""The monthly Wayback crawl (paper §4.1, Figure 4).

For each domain and month the crawler: checks archive exclusions, asks the
availability API for the closest capture, discards captures more than six
months from the requested date (*outdated*), loads the remaining archive
URLs in the simulated browser (storing requests/responses HAR-style plus
the page HTML), and finally discards *partial* captures whose HAR size is
below 10% of that domain-year's average.

The crawl is the most failure-prone stage of the pipeline, so it runs
under the resilience layer (:mod:`repro.resilience`): classified faults
are retried with deterministic backoff, a domain that keeps failing
trips a circuit breaker and degrades to *missing*
(:attr:`CrawlStatus.FAILED`), completed slots checkpoint to a crash-safe
journal (``REPRO_CRAWL_JOURNAL``), and an interrupted crawl resumed from
that journal produces a :class:`CrawlResult` pickle-identical to an
uninterrupted run — every record is canonicalized through one interning
pass regardless of how it was produced.
"""

from __future__ import annotations

import hashlib
import logging
from dataclasses import dataclass, field
from datetime import date
from enum import Enum
from typing import Dict, Iterable, List, Optional

from ..obs.metrics import get_metrics
from ..obs.trace import emit_event
from ..obs.trace import span as trace_span
from ..resilience import (
    CrawlJournal,
    FaultyArchive,
    ResiliencePolicy,
    RetryExhausted,
    canonicalize_records,
    default_resilience,
    retry_call,
    slot_key,
)
from ..web.browser import Browser, VisitResult
from ..web.har import HarFile
from .archive import WaybackArchive
from .availability import AvailabilityAPI
from .rewrite import truncate_wayback, wayback_url

logger = logging.getLogger("repro.wayback.crawler")

#: The paper discards availability hits more than six months away.
OUTDATED_THRESHOLD_DAYS = 183

#: HAR-size fraction of the yearly average below which a capture is partial.
PARTIAL_SIZE_FRACTION = 0.10


class CrawlStatus(str, Enum):
    """Outcome of one (domain, month) crawl slot."""

    OK = "ok"
    EXCLUDED = "excluded"
    NOT_ARCHIVED = "not archived"
    OUTDATED = "outdated"
    PARTIAL = "partial"
    #: The slot's domain failed persistently (retries exhausted or the
    #: per-domain circuit breaker opened) and was degraded to missing
    #: instead of aborting the crawl.
    FAILED = "failed"


@dataclass
class CrawlRecord:
    """One crawled (domain, month) slot."""

    domain: str
    month: date
    status: CrawlStatus
    har: Optional[HarFile] = None
    html: str = ""
    capture_date: Optional[date] = None

    @property
    def usable(self) -> bool:
        """Whether this slot produced analysable data (status OK)."""
        return self.status is CrawlStatus.OK

    def truncated_urls(self) -> List[str]:
        """Original request URLs (archive prefix stripped), memoized.

        The §4 replay reads these once per (list, revision, pass); caching
        on the record keeps truncation a per-record cost.
        """
        cached = getattr(self, "_truncated_urls", None)
        if cached is None:
            if self.har is None:
                cached = []
            else:
                cached = [truncate_wayback(url) for url in self.har.request_urls()]
            self._truncated_urls = cached
        return cached


def month_range(start: date, end: date) -> List[date]:
    """First-of-month dates from ``start`` to ``end`` inclusive."""
    months = []
    year, month = start.year, start.month
    while (year, month) <= (end.year, end.month):
        months.append(date(year, month, 1))
        month += 1
        if month > 12:
            month = 1
            year += 1
    return months


@dataclass
class CrawlResult:
    """All records of a crawl, with the paper's accounting queries."""

    records: List[CrawlRecord] = field(default_factory=list)

    def usable(self) -> List[CrawlRecord]:
        """Whether this slot produced analysable data (status OK)."""
        return [record for record in self.records if record.usable]

    def domain_groups(self) -> List[List[CrawlRecord]]:
        """Records grouped by domain, groups in first-appearance order.

        The §4 replay shards work across processes along domain
        boundaries: every per-domain accumulator (first detection, first
        anti-adblock sighting) then lives entirely inside one shard, so a
        sharded run merges back to exactly the serial result.
        """
        grouped: Dict[str, List[CrawlRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.domain, []).append(record)
        return list(grouped.values())

    def by_month(self) -> Dict[date, List[CrawlRecord]]:
        """Records grouped by requested month."""
        grouped: Dict[date, List[CrawlRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.month, []).append(record)
        return grouped

    def missing_counts_by_month(self) -> Dict[date, Dict[str, int]]:
        """Figure 5's accounting: partial / not archived / outdated per month."""
        counts: Dict[date, Dict[str, int]] = {}
        for record in self.records:
            bucket = counts.setdefault(
                record.month,
                {
                    "partial": 0,
                    "not_archived": 0,
                    "outdated": 0,
                    "excluded": 0,
                    "failed": 0,
                },
            )
            if record.status is CrawlStatus.PARTIAL:
                bucket["partial"] += 1
            elif record.status is CrawlStatus.NOT_ARCHIVED:
                bucket["not_archived"] += 1
            elif record.status is CrawlStatus.OUTDATED:
                bucket["outdated"] += 1
            elif record.status is CrawlStatus.EXCLUDED:
                bucket["excluded"] += 1
            elif record.status is CrawlStatus.FAILED:
                bucket["failed"] += 1
        return counts


class WaybackCrawler:
    """Crawls monthly snapshots of a domain list from a simulated archive.

    The paper parallelised across 10 browser instances purely for speed;
    results are order-independent, so this implementation crawls
    sequentially and deterministically.
    """

    def __init__(
        self,
        archive: WaybackArchive,
        browser: Optional[Browser] = None,
        resilience: Optional[ResiliencePolicy] = None,
    ) -> None:
        self.resilience = resilience or default_resilience()
        self.injector = self.resilience.injector()
        if self.injector is not None:
            archive = FaultyArchive(archive, self.injector)
        self.archive = archive
        self.api = AvailabilityAPI(archive)
        self.browser = browser or Browser()
        self._sleeper = self.resilience.sleeper()

    #: Emit an INFO heartbeat every this many domains.
    PROGRESS_EVERY = 100

    def crawl(
        self, domains: Iterable[str], start: date, end: date
    ) -> CrawlResult:
        """Crawl every domain for every month in ``[start, end]``.

        With a journal directory configured (``REPRO_CRAWL_JOURNAL``),
        completed slots checkpoint as they finish and a re-run resumes
        from them; the resumed result is pickle-identical to an
        uninterrupted run's.
        """
        result = CrawlResult()
        months = month_range(start, end)
        domains = list(domains)
        metrics = get_metrics()
        journal = self.resilience.journal(
            "wayback", self._fingerprint(domains, start, end)
        )
        state = journal.load() if journal is not None else None
        if state is not None and state.slots:
            metrics.count("crawl.resumed_slots", len(state.slots))
            emit_event("crawl_resume", scope="wayback", slots=len(state.slots))
            logger.info("resuming wayback crawl: %d journaled slots", len(state.slots))
        breaker = self.resilience.breaker()
        with trace_span(
            "crawl", domains=len(domains), months=len(months)
        ) as crawl_span:
            for index, domain in enumerate(domains):
                with trace_span(f"site:{domain}"):
                    records = self._crawl_domain(
                        domain, months, state=state, journal=journal, breaker=breaker
                    )
                result.records.extend(records)
                usable = sum(1 for record in records if record.usable)
                metrics.count("crawl.domains")
                metrics.count("crawl.slots", len(records))
                metrics.count("crawl.records_fetched", usable)
                crawl_span.count("records_fetched", usable)
                if (index + 1) % self.PROGRESS_EVERY == 0:
                    logger.info(
                        "crawl progress: %d/%d domains, %d usable records",
                        index + 1,
                        len(domains),
                        metrics.counter("crawl.records_fetched"),
                    )
            for record in result.records:
                metrics.count(f"crawl.status.{record.status.name.lower()}")
        if self.injector is not None:
            metrics.gauge("crawl.faults_injected", self.injector.injected)
        if journal is not None:
            journal.mark_complete()
            journal.close()
            emit_event("journal_complete", scope="wayback", path=str(journal.path))
        # Every construction path — fresh, journal-resumed, fault-retried —
        # converges through one interning pass, making equal results
        # pickle-byte-identical (see repro.resilience.canonical).
        canonicalize_records(result.records)
        return result

    @staticmethod
    def _fingerprint(domains: List[str], start: date, end: date) -> Dict[str, object]:
        """Campaign identity pinned in the journal header."""
        digest = hashlib.sha256("\n".join(domains).encode("utf-8")).hexdigest()[:16]
        return {
            "domains_sha": digest,
            "n_domains": len(domains),
            "start": start.isoformat(),
            "end": end.isoformat(),
        }

    def _crawl_domain(
        self,
        domain: str,
        months: List[date],
        state=None,
        journal: Optional[CrawlJournal] = None,
        breaker=None,
    ) -> List[CrawlRecord]:
        exclusion = self.archive.is_excluded(domain)
        if exclusion is not None:
            return [
                CrawlRecord(domain=domain, month=month, status=CrawlStatus.EXCLUDED)
                for month in months
            ]
        metrics = get_metrics()
        records: List[CrawlRecord] = []
        for month in months:
            key = (domain, month.isoformat())
            if state is not None and key in state:
                record = state.take(key)
                metrics.count("crawl.slots_from_journal")
                if breaker is not None:
                    self._replay_breaker(breaker, domain, record)
                records.append(record)
                continue
            if breaker is not None and breaker.is_open(domain):
                # Degrade without an attempt: the domain already proved
                # persistently broken this run (or in the journaled prefix).
                record = CrawlRecord(
                    domain=domain, month=month, status=CrawlStatus.FAILED
                )
                metrics.count("crawl.slots_degraded")
            else:
                record = self._resilient_slot(domain, month, breaker)
            if journal is not None:
                # Journal pre-partial-flagging: _flag_partials is
                # deterministic, so resume re-applies it over the
                # combined journaled + fresh records.
                journal.append(key, record)
            records.append(record)
        self._flag_partials(records)
        return records

    @staticmethod
    def _replay_breaker(breaker, domain: str, record: CrawlRecord) -> None:
        """Re-derive breaker state from a journaled slot's outcome.

        Replaying FAILED/success transitions makes the slots *after* the
        resume point degrade exactly as they would have in the
        uninterrupted run; ``record_failure`` reports an opening once,
        so ``crawl.circuit_open`` counts each domain once either way.
        """
        if record.status is CrawlStatus.FAILED:
            if breaker.record_failure(domain):
                get_metrics().count("crawl.circuit_open")
                emit_event("crawl_circuit_open", domain=domain, source="journal")
        else:
            breaker.record_success(domain)

    def _resilient_slot(
        self, domain: str, month: date, breaker=None
    ) -> CrawlRecord:
        """One slot under the retry policy; gives up into a FAILED record."""
        key = slot_key(domain, month)
        metrics = get_metrics()
        attempts = {"n": 0}

        def attempt() -> CrawlRecord:
            attempts["n"] += 1
            if attempts["n"] == 1:
                return self._crawl_slot(domain, month)
            with trace_span(f"retry:{key}", attempt=attempts["n"]):
                return self._crawl_slot(domain, month)

        def on_retry(fault, attempt_no: int, delay_ms: float) -> None:
            metrics.count("crawl.retries")
            metrics.count("crawl.backoff_ms", int(round(delay_ms)))
            emit_event(
                "crawl_retry",
                slot=key,
                kind=fault.kind,
                attempt=attempt_no,
                backoff_ms=round(delay_ms, 3),
            )

        try:
            record = retry_call(
                attempt,
                key=key,
                policy=self.resilience.retry,
                sleeper=self._sleeper,
                on_retry=on_retry,
            )
        except RetryExhausted as exc:
            metrics.count("crawl.gave_up")
            emit_event(
                "crawl_gave_up", slot=key, kind=exc.fault.kind, retries=exc.retries
            )
            logger.warning(
                "slot %s degraded to failed after %d retries (%s)",
                key,
                exc.retries,
                exc.fault.kind,
            )
            if breaker is not None and breaker.record_failure(domain):
                metrics.count("crawl.circuit_open")
                emit_event("crawl_circuit_open", domain=domain, source="live")
                logger.warning(
                    "circuit open: %s degrades to missing for remaining months",
                    domain,
                )
            return CrawlRecord(domain=domain, month=month, status=CrawlStatus.FAILED)
        if breaker is not None:
            breaker.record_success(domain)
        return record

    def _crawl_slot(self, domain: str, month: date) -> CrawlRecord:
        availability = self.api.lookup(f"http://{domain}/", month)
        if availability.empty:
            return CrawlRecord(domain=domain, month=month, status=CrawlStatus.NOT_ARCHIVED)
        drift = abs((availability.capture_date - month).days)
        if drift > OUTDATED_THRESHOLD_DAYS:
            return CrawlRecord(domain=domain, month=month, status=CrawlStatus.OUTDATED)
        capture = self.archive.closest(domain, month)
        visit = self._visit_capture(capture, slot_key(domain, month))
        return CrawlRecord(
            domain=domain,
            month=month,
            status=CrawlStatus.OK,
            har=visit.har,
            html=capture.snapshot.html,
            capture_date=capture.captured_on,
        )

    def _visit_capture(self, capture, key: Optional[str] = None) -> VisitResult:
        interceptor = None
        if self.injector is not None and key is not None:
            interceptor = self.injector.browser_interceptor(key)
        browser = Browser(
            adblocker=self.browser.adblocker,
            url_rewriter=lambda url: wayback_url(url, capture.captured_on),
            # The crawl stores raw HTML; the DOM is parsed lazily by the
            # element-rule analysis, so skip it here.
            parse_dom=self.browser.parse_dom if self.browser.adblocker else False,
            interceptor=interceptor,
        )
        return browser.visit(capture.snapshot)

    @staticmethod
    def _flag_partials(records: List[CrawlRecord]) -> None:
        """Apply the 10%-of-yearly-average HAR size rule in place."""
        by_year: Dict[int, List[CrawlRecord]] = {}
        for record in records:
            if record.status is CrawlStatus.OK and record.har is not None:
                by_year.setdefault(record.month.year, []).append(record)
        for year_records in by_year.values():
            average = sum(r.har.total_size for r in year_records) / len(year_records)
            for record in year_records:
                if record.har.total_size < PARTIAL_SIZE_FRACTION * average:
                    record.status = CrawlStatus.PARTIAL
                    record.har = None
                    record.html = ""
