"""The monthly Wayback crawl (paper §4.1, Figure 4).

For each domain and month the crawler: checks archive exclusions, asks the
availability API for the closest capture, discards captures more than six
months from the requested date (*outdated*), loads the remaining archive
URLs in the simulated browser (storing requests/responses HAR-style plus
the page HTML), and finally discards *partial* captures whose HAR size is
below 10% of that domain-year's average.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from datetime import date
from enum import Enum
from typing import Dict, Iterable, List, Optional

from ..obs.metrics import get_metrics
from ..obs.trace import span as trace_span
from ..web.browser import Browser, VisitResult
from ..web.har import HarFile
from .archive import WaybackArchive
from .availability import AvailabilityAPI
from .rewrite import truncate_wayback, wayback_url

logger = logging.getLogger("repro.wayback.crawler")

#: The paper discards availability hits more than six months away.
OUTDATED_THRESHOLD_DAYS = 183

#: HAR-size fraction of the yearly average below which a capture is partial.
PARTIAL_SIZE_FRACTION = 0.10


class CrawlStatus(str, Enum):
    """Outcome of one (domain, month) crawl slot."""

    OK = "ok"
    EXCLUDED = "excluded"
    NOT_ARCHIVED = "not archived"
    OUTDATED = "outdated"
    PARTIAL = "partial"


@dataclass
class CrawlRecord:
    """One crawled (domain, month) slot."""

    domain: str
    month: date
    status: CrawlStatus
    har: Optional[HarFile] = None
    html: str = ""
    capture_date: Optional[date] = None

    @property
    def usable(self) -> bool:
        """Whether this slot produced analysable data (status OK)."""
        return self.status is CrawlStatus.OK

    def truncated_urls(self) -> List[str]:
        """Original request URLs (archive prefix stripped), memoized.

        The §4 replay reads these once per (list, revision, pass); caching
        on the record keeps truncation a per-record cost.
        """
        cached = getattr(self, "_truncated_urls", None)
        if cached is None:
            if self.har is None:
                cached = []
            else:
                cached = [truncate_wayback(url) for url in self.har.request_urls()]
            self._truncated_urls = cached
        return cached


def month_range(start: date, end: date) -> List[date]:
    """First-of-month dates from ``start`` to ``end`` inclusive."""
    months = []
    year, month = start.year, start.month
    while (year, month) <= (end.year, end.month):
        months.append(date(year, month, 1))
        month += 1
        if month > 12:
            month = 1
            year += 1
    return months


@dataclass
class CrawlResult:
    """All records of a crawl, with the paper's accounting queries."""

    records: List[CrawlRecord] = field(default_factory=list)

    def usable(self) -> List[CrawlRecord]:
        """Whether this slot produced analysable data (status OK)."""
        return [record for record in self.records if record.usable]

    def domain_groups(self) -> List[List[CrawlRecord]]:
        """Records grouped by domain, groups in first-appearance order.

        The §4 replay shards work across processes along domain
        boundaries: every per-domain accumulator (first detection, first
        anti-adblock sighting) then lives entirely inside one shard, so a
        sharded run merges back to exactly the serial result.
        """
        grouped: Dict[str, List[CrawlRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.domain, []).append(record)
        return list(grouped.values())

    def by_month(self) -> Dict[date, List[CrawlRecord]]:
        """Records grouped by requested month."""
        grouped: Dict[date, List[CrawlRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.month, []).append(record)
        return grouped

    def missing_counts_by_month(self) -> Dict[date, Dict[str, int]]:
        """Figure 5's accounting: partial / not archived / outdated per month."""
        counts: Dict[date, Dict[str, int]] = {}
        for record in self.records:
            bucket = counts.setdefault(
                record.month,
                {"partial": 0, "not_archived": 0, "outdated": 0, "excluded": 0},
            )
            if record.status is CrawlStatus.PARTIAL:
                bucket["partial"] += 1
            elif record.status is CrawlStatus.NOT_ARCHIVED:
                bucket["not_archived"] += 1
            elif record.status is CrawlStatus.OUTDATED:
                bucket["outdated"] += 1
            elif record.status is CrawlStatus.EXCLUDED:
                bucket["excluded"] += 1
        return counts


class WaybackCrawler:
    """Crawls monthly snapshots of a domain list from a simulated archive.

    The paper parallelised across 10 browser instances purely for speed;
    results are order-independent, so this implementation crawls
    sequentially and deterministically.
    """

    def __init__(self, archive: WaybackArchive, browser: Optional[Browser] = None) -> None:
        self.archive = archive
        self.api = AvailabilityAPI(archive)
        self.browser = browser or Browser()

    #: Emit an INFO heartbeat every this many domains.
    PROGRESS_EVERY = 100

    def crawl(
        self, domains: Iterable[str], start: date, end: date
    ) -> CrawlResult:
        """Crawl every domain for every month in ``[start, end]``."""
        result = CrawlResult()
        months = month_range(start, end)
        domains = list(domains)
        metrics = get_metrics()
        with trace_span(
            "crawl", domains=len(domains), months=len(months)
        ) as crawl_span:
            for index, domain in enumerate(domains):
                with trace_span(f"site:{domain}"):
                    records = self._crawl_domain(domain, months)
                result.records.extend(records)
                usable = sum(1 for record in records if record.usable)
                metrics.count("crawl.domains")
                metrics.count("crawl.slots", len(records))
                metrics.count("crawl.records_fetched", usable)
                crawl_span.count("records_fetched", usable)
                if (index + 1) % self.PROGRESS_EVERY == 0:
                    logger.info(
                        "crawl progress: %d/%d domains, %d usable records",
                        index + 1,
                        len(domains),
                        metrics.counter("crawl.records_fetched"),
                    )
            for record in result.records:
                metrics.count(f"crawl.status.{record.status.name.lower()}")
        return result

    def _crawl_domain(self, domain: str, months: List[date]) -> List[CrawlRecord]:
        exclusion = self.archive.is_excluded(domain)
        if exclusion is not None:
            return [
                CrawlRecord(domain=domain, month=month, status=CrawlStatus.EXCLUDED)
                for month in months
            ]
        records: List[CrawlRecord] = []
        for month in months:
            records.append(self._crawl_slot(domain, month))
        self._flag_partials(records)
        return records

    def _crawl_slot(self, domain: str, month: date) -> CrawlRecord:
        availability = self.api.lookup(f"http://{domain}/", month)
        if availability.empty:
            return CrawlRecord(domain=domain, month=month, status=CrawlStatus.NOT_ARCHIVED)
        drift = abs((availability.capture_date - month).days)
        if drift > OUTDATED_THRESHOLD_DAYS:
            return CrawlRecord(domain=domain, month=month, status=CrawlStatus.OUTDATED)
        capture = self.archive.closest(domain, month)
        visit = self._visit_capture(capture)
        return CrawlRecord(
            domain=domain,
            month=month,
            status=CrawlStatus.OK,
            har=visit.har,
            html=capture.snapshot.html,
            capture_date=capture.captured_on,
        )

    def _visit_capture(self, capture) -> VisitResult:
        browser = Browser(
            adblocker=self.browser.adblocker,
            url_rewriter=lambda url: wayback_url(url, capture.captured_on),
            # The crawl stores raw HTML; the DOM is parsed lazily by the
            # element-rule analysis, so skip it here.
            parse_dom=self.browser.parse_dom if self.browser.adblocker else False,
        )
        return browser.visit(capture.snapshot)

    @staticmethod
    def _flag_partials(records: List[CrawlRecord]) -> None:
        """Apply the 10%-of-yearly-average HAR size rule in place."""
        by_year: Dict[int, List[CrawlRecord]] = {}
        for record in records:
            if record.status is CrawlStatus.OK and record.har is not None:
                by_year.setdefault(record.month.year, []).append(record)
        for year_records in by_year.values():
            average = sum(r.har.total_size for r in year_records) / len(year_records)
            for record in year_records:
                if record.har.total_size < PARTIAL_SIZE_FRACTION * average:
                    record.status = CrawlStatus.PARTIAL
                    record.har = None
                    record.html = ""
