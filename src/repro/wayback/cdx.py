"""The Wayback CDX server API.

The availability API (:mod:`~repro.wayback.availability`) answers "what is
the closest capture to this date"; the CDX server answers "list every
capture of this URL", with date filtering, ordering and limits — the
interface retrospective studies use to enumerate snapshots before
crawling. This simulator exposes the same query surface over a
:class:`~repro.wayback.archive.WaybackArchive`.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import List, Optional

from ..web.url import registered_domain
from .archive import WaybackArchive
from .rewrite import format_timestamp, parse_timestamp, wayback_url


@dataclass(frozen=True)
class CdxRow:
    """One CDX result row (the fields the text API returns)."""

    urlkey: str
    timestamp: str
    original: str
    mimetype: str
    statuscode: int
    length: int

    @property
    def capture_date(self) -> date:
        """The capture date parsed from the row's timestamp."""
        return parse_timestamp(self.timestamp)

    @property
    def archive_url(self) -> str:
        """The web.archive.org URL replaying this capture."""
        return wayback_url(self.original, self.capture_date)


def _url_key(url_or_domain: str) -> str:
    """The SURT-ish collapse the CDX server keys captures by."""
    domain = registered_domain(url_or_domain)
    return ",".join(reversed(domain.split("."))) + ")/"


class CdxServer:
    """CDX queries over a simulated archive."""

    def __init__(self, archive: WaybackArchive) -> None:
        self.archive = archive

    def query(
        self,
        url: str,
        from_date: Optional[date] = None,
        to_date: Optional[date] = None,
        limit: Optional[int] = None,
        reverse: bool = False,
    ) -> List[CdxRow]:
        """All captures of ``url``'s domain, oldest first by default.

        ``from_date``/``to_date`` bound the capture dates inclusively;
        ``limit`` truncates after ordering; ``reverse`` returns newest
        first (the CDX ``sort=reverse`` flag). Excluded domains return no
        rows, exactly like the real server.
        """
        domain = registered_domain(url)
        if self.archive.is_excluded(domain) is not None:
            return []
        rows: List[CdxRow] = []
        for capture in self.archive.captures_for(domain):
            when = capture.captured_on
            if from_date is not None and when < from_date:
                continue
            if to_date is not None and when > to_date:
                continue
            snapshot = capture.snapshot
            rows.append(
                CdxRow(
                    urlkey=_url_key(snapshot.url),
                    timestamp=format_timestamp(when),
                    original=snapshot.url,
                    mimetype="text/html",
                    statuscode=snapshot.status,
                    length=len(snapshot.html),
                )
            )
        if reverse:
            rows.reverse()
        if limit is not None:
            rows = rows[:limit]
        return rows

    def text(self, url: str, **kwargs) -> str:
        """The space-separated text format the real CDX endpoint serves."""
        return "\n".join(
            f"{row.urlkey} {row.timestamp} {row.original} {row.mimetype} "
            f"{row.statuscode} {row.length}"
            for row in self.query(url, **kwargs)
        )

    def capture_count(self, url: str) -> int:
        """Number of captures of the URL's domain."""
        return len(self.query(url))
