"""The Wayback Availability JSON API.

Mirrors the shape of ``https://archive.org/wayback/available``: given a URL
and a timestamp, return the closest snapshot — or an empty
``archived_snapshots`` object when nothing is served (never archived,
excluded, or a 3XX redirect capture).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Dict, Optional

from ..web.url import registered_domain
from .archive import WaybackArchive
from .rewrite import format_timestamp


@dataclass
class AvailabilityResult:
    """Parsed availability response."""

    available: bool
    archive_url: str = ""
    capture_date: Optional[date] = None
    status: str = ""

    @property
    def empty(self) -> bool:
        """Whether the API returned no snapshot."""
        return not self.available


class AvailabilityAPI:
    """Query interface over a :class:`WaybackArchive`."""

    def __init__(self, archive: WaybackArchive) -> None:
        self.archive = archive

    def lookup_json(self, url: str, timestamp: str) -> Dict:
        """The raw JSON-shaped response, exactly like the real API."""
        domain = registered_domain(url)
        requested = _parse_requested(timestamp)
        capture = self.archive.closest(domain, requested)
        if capture is None:
            return {"url": url, "archived_snapshots": {}}
        return {
            "url": url,
            "archived_snapshots": {
                "closest": {
                    "available": True,
                    "url": capture.archive_url,
                    "timestamp": format_timestamp(capture.captured_on),
                    "status": str(capture.snapshot.status),
                }
            },
        }

    def lookup(self, url: str, when: date) -> AvailabilityResult:
        """Typed wrapper over :meth:`lookup_json`."""
        response = self.lookup_json(url, format_timestamp(when))
        closest = response["archived_snapshots"].get("closest")
        if not closest:
            return AvailabilityResult(available=False)
        from .rewrite import parse_timestamp

        return AvailabilityResult(
            available=True,
            archive_url=closest["url"],
            capture_date=parse_timestamp(closest["timestamp"]),
            status=closest["status"],
        )


def _parse_requested(timestamp: str) -> date:
    from .rewrite import parse_timestamp

    return parse_timestamp(timestamp)
