"""Wayback Machine URL rewriting.

To archive a page the Wayback Machine rewrites every live URL by
prepending ``http://web.archive.org/web/<timestamp>/``. The measurement
pipeline (§4.2) must truncate that reference before matching filter rules
— except for *Wayback escape* URLs, which leaked out of the archive
unrewritten and must be left alone.
"""

from __future__ import annotations

import re
from datetime import date
from typing import Optional

ARCHIVE_HOST = "web.archive.org"
_PREFIX_RE = re.compile(
    r"^https?://web\.archive\.org/web/(?P<timestamp>\d{4,14})(?:[a-z_]{2,3})?/(?P<original>.*)$"
)


def format_timestamp(when: date) -> str:
    """The 14-digit Wayback timestamp for a date (midnight)."""
    return f"{when.year:04d}{when.month:02d}{when.day:02d}000000"


def parse_timestamp(timestamp: str) -> date:
    """Parse a 4-to-14 digit Wayback timestamp into a date.

    Partial timestamps (just a year, or year+month) default the missing
    month/day to 01, like the Wayback Machine does.
    """
    year = int(timestamp[0:4])
    month = int(timestamp[4:6]) if len(timestamp) >= 6 else 1
    day = int(timestamp[6:8]) if len(timestamp) >= 8 else 1
    return date(year, max(month, 1), max(day, 1))


def wayback_url(original_url: str, when: date) -> str:
    """The archive URL serving ``original_url`` as captured on ``when``."""
    return f"http://{ARCHIVE_HOST}/web/{format_timestamp(when)}/{original_url}"


def is_wayback_url(url: str) -> bool:
    """Whether the URL carries the archive prefix."""
    return _PREFIX_RE.match(url) is not None


def truncate_wayback(url: str) -> str:
    """Strip the archive prefix, recovering the original URL.

    Non-archive URLs — including Wayback escapes that were requested
    directly against the live web — are returned unchanged, mirroring the
    paper's "we do not truncate Wayback escape URLs".
    """
    match = _PREFIX_RE.match(url)
    if match is None:
        return url
    original = match.group("original")
    # Nested rewriting can occur when an archived page itself references
    # archive URLs; truncate repeatedly.
    while True:
        inner = _PREFIX_RE.match(original)
        if inner is None:
            return original
        original = inner.group("original")


def wayback_timestamp_of(url: str) -> Optional[date]:
    """The capture date embedded in an archive URL, if it is one."""
    match = _PREFIX_RE.match(url)
    if match is None:
        return None
    return parse_timestamp(match.group("timestamp"))
