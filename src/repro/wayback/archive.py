"""The simulated Wayback Machine snapshot store.

Holds dated :class:`~repro.web.page.PageSnapshot` captures per domain and
reproduces the archive's quirks the paper had to engineer around (§4.1):

- domains excluded by robots.txt policy, administrator request, or for
  undefined reasons;
- irregular capture cadence, so the closest snapshot to a requested date
  may be months off (*outdated* URLs);
- pages whose capture was an anti-bot error page (*partial* snapshots);
- HTTP 3XX redirect captures, for which the availability API returns an
  empty JSON object (*not archived* URLs).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from datetime import date
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..web.page import PageSnapshot
from .rewrite import wayback_url


class ExclusionReason(str, Enum):
    """Why the archive refuses to serve a domain at all."""

    ROBOTS_TXT = "robots.txt exclusion policy"
    ADMIN_REQUEST = "domain administrator request"
    UNDEFINED = "undefined reasons"


@dataclass
class Capture:
    """One archived snapshot of a domain's homepage."""

    captured_on: date
    snapshot: PageSnapshot
    #: True when the site served the crawler an anti-bot error page,
    #: producing a tiny, useless capture.
    partial: bool = False

    @property
    def archive_url(self) -> str:
        """The web.archive.org URL serving this capture."""
        return wayback_url(self.snapshot.url, self.captured_on)


class WaybackArchive:
    """Snapshot store indexed by domain and capture date."""

    def __init__(self) -> None:
        self._captures: Dict[str, List[Capture]] = {}
        self._exclusions: Dict[str, ExclusionReason] = {}

    # -- ingest ---------------------------------------------------------------

    def store(
        self, domain: str, captured_on: date, snapshot: PageSnapshot, partial: bool = False
    ) -> Capture:
        """Archive one capture (keeps captures date-sorted per domain)."""
        capture = Capture(captured_on=captured_on, snapshot=snapshot, partial=partial)
        captures = self._captures.setdefault(domain, [])
        bisect.insort(captures, capture, key=lambda c: c.captured_on)
        return capture

    def exclude(self, domain: str, reason: ExclusionReason) -> None:
        """Mark a domain as never archived (robots.txt / admin / undefined)."""
        self._exclusions[domain] = reason

    # -- queries ---------------------------------------------------------------

    def is_excluded(self, domain: str) -> Optional[ExclusionReason]:
        """The exclusion reason for a domain, if any."""
        return self._exclusions.get(domain)

    def excluded_domains(self) -> Dict[str, ExclusionReason]:
        """All excluded domains with their reasons."""
        return dict(self._exclusions)

    def domains(self) -> List[str]:
        """Every archived domain, sorted."""
        return sorted(self._captures)

    def captures_for(self, domain: str) -> List[Capture]:
        """All captures of a domain, oldest first."""
        return list(self._captures.get(domain, []))

    def closest(self, domain: str, requested: date) -> Optional[Capture]:
        """The capture closest in time to ``requested`` (either direction).

        Returns ``None`` for excluded or never-captured domains, and for
        captures that are HTTP 3XX redirects — the real availability API
        returns an empty JSON object for those.
        """
        if domain in self._exclusions:
            return None
        captures = self._captures.get(domain)
        if not captures:
            return None
        dates = [capture.captured_on for capture in captures]
        index = bisect.bisect_left(dates, requested)
        candidates: List[Tuple[int, Capture]] = []
        if index < len(captures):
            candidates.append((abs((captures[index].captured_on - requested).days), captures[index]))
        if index > 0:
            candidates.append((abs((captures[index - 1].captured_on - requested).days), captures[index - 1]))
        if not candidates:
            return None
        _, capture = min(candidates, key=lambda pair: pair[0])
        if capture.snapshot.status >= 300 and capture.snapshot.status < 400:
            return None
        return capture

    def total_captures(self) -> int:
        """Number of captures across all domains."""
        return sum(len(captures) for captures in self._captures.values())
