"""Wayback Machine simulator: archive, availability API, rewriting, crawler.

Substitutes for the Internet Archive's Wayback Machine and the paper's
Selenium crawl pipeline (§4.1, Figure 4).
"""

from .archive import Capture, ExclusionReason, WaybackArchive
from .availability import AvailabilityAPI, AvailabilityResult
from .crawler import (
    OUTDATED_THRESHOLD_DAYS,
    PARTIAL_SIZE_FRACTION,
    CrawlRecord,
    CrawlResult,
    CrawlStatus,
    WaybackCrawler,
    month_range,
)
from .cdx import CdxRow, CdxServer
from .store import DataRepository
from .rewrite import (
    format_timestamp,
    is_wayback_url,
    parse_timestamp,
    truncate_wayback,
    wayback_timestamp_of,
    wayback_url,
)

__all__ = [
    "CdxRow",
    "CdxServer",
    "DataRepository",
    "Capture",
    "ExclusionReason",
    "WaybackArchive",
    "AvailabilityAPI",
    "AvailabilityResult",
    "OUTDATED_THRESHOLD_DAYS",
    "PARTIAL_SIZE_FRACTION",
    "CrawlRecord",
    "CrawlResult",
    "CrawlStatus",
    "WaybackCrawler",
    "month_range",
    "format_timestamp",
    "is_wayback_url",
    "parse_timestamp",
    "truncate_wayback",
    "wayback_timestamp_of",
    "wayback_url",
]
