"""Packed token-event segments — the §5 feature cache's binary store.

One segment holds the event streams of many scripts behind the same keys
the JSON cache uses: ``(sha256(source), EXTRACTOR_VERSION, unpack)``.
Payload sections, in order::

    u32  extractor_version
    string table                       (kinds, texts, context strings)
    context-tuple table:
        u32 ntuples; u32 offsets[ntuples+1]; u32 nids; u32 ids[nids]
    event array:
        u32 nevents; nevents × (u32 kind_id, u32 text_id, u32 ctx_id)
    script directory:
        u32 nscripts; nscripts × (32s digest, u8 flags,
                                  u32 event_offset, u32 event_count)

Only the directory is decoded at open (one fixed-width scan); strings,
context tuples, and event records decode lazily per script, so a warm
feature-store lookup maps the whole segment but touches only the scripts
it is asked for. Flag bits: 1 = parse_error, 2 = unpack_bailout,
4 = extracted with ``unpack=True`` (part of the key).

:class:`PackedEventCache` is the directory-level store the feature store
mounts: it opens every segment under ``<root>/segments``, merges their
directories (later segments win on duplicate keys — duplicates carry
identical content by construction), and appends each extraction batch as
one new segment. Corrupt or truncated segments are skipped at mount with
a ``dataplane.integrity_errors`` count — the cache degrades to a miss,
never to wrong data.
"""

from __future__ import annotations

import os
import struct
from itertools import count as _counter
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .format import (
    KIND_EVENTS,
    DataPlaneError,
    MappedArtifact,
    StringTable,
    count,
    pack_string_table,
    pack_u32s,
    write_artifact,
)

_U32 = struct.Struct("<I")
_EVENT = struct.Struct("<III")
_SCRIPT = struct.Struct("<32sBII")

_FLAG_PARSE_ERROR = 1
_FLAG_UNPACK_BAILOUT = 2
_FLAG_UNPACK = 4

SEGMENT_SUFFIX = ".rdpe"

#: One cache entry: (digest hex, unpack flag, events-tuple, parse_error,
#: unpack_bailout) — mirrors ``featstore.ScriptEvents`` without importing
#: it (the dataplane stays a leaf below core).
EventEntry = Tuple[str, bool, Sequence[tuple], bool, bool]


def write_event_segment(
    path, entries: Sequence[EventEntry], extractor_version: int
) -> int:
    """Pack one batch of script event streams into a segment file."""
    strings: Dict[str, int] = {}
    tuples: Dict[Tuple[str, ...], int] = {}
    tuple_ids: List[int] = []
    tuple_offsets: List[int] = [0]

    def string_id(text: str) -> int:
        found = strings.get(text)
        if found is None:
            found = len(strings)
            strings[text] = found
        return found

    def tuple_id(contexts: Tuple[str, ...]) -> int:
        found = tuples.get(contexts)
        if found is None:
            found = len(tuples)
            tuples[contexts] = found
            tuple_ids.extend(string_id(context) for context in contexts)
            tuple_offsets.append(len(tuple_ids))
        return found

    event_records = bytearray()
    directory = bytearray()
    event_offset = 0
    for digest, unpack, events, parse_error, unpack_bailout in entries:
        for kind, text, contexts in events:
            event_records += _EVENT.pack(
                string_id(kind), string_id(text), tuple_id(tuple(contexts))
            )
        flags = (
            (_FLAG_PARSE_ERROR if parse_error else 0)
            | (_FLAG_UNPACK_BAILOUT if unpack_bailout else 0)
            | (_FLAG_UNPACK if unpack else 0)
        )
        directory += _SCRIPT.pack(
            bytes.fromhex(digest), flags, event_offset, len(events)
        )
        event_offset += len(events)

    payload = b"".join(
        (
            _U32.pack(extractor_version),
            pack_string_table(list(strings)),
            _U32.pack(len(tuples)),
            pack_u32s(tuple_offsets),
            _U32.pack(len(tuple_ids)),
            pack_u32s(tuple_ids),
            _U32.pack(event_offset),
            bytes(event_records),
            _U32.pack(len(entries)),
            bytes(directory),
        )
    )
    return write_artifact(path, KIND_EVENTS, payload)


class EventSegmentReader:
    """Lazy mmap-backed reader over one packed event segment.

    ``string_intern`` / ``tuple_intern`` are optional canonicalisers
    applied at the decode boundary (once per distinct string / context
    tuple): with the feature store's interning tables plugged in here,
    every decoded entry is born canonical and the store can admit it
    without re-walking its events.
    """

    def __init__(self, path, string_intern=None, tuple_intern=None) -> None:
        self._artifact = MappedArtifact(path, expect_kind=KIND_EVENTS)
        buffer = self._artifact.payload
        self.path = Path(path)
        self._tuple_intern = tuple_intern
        try:
            (self.extractor_version,) = _U32.unpack_from(buffer, 0)
            self._strings = StringTable(buffer, 4, intern=string_intern)
            at = self._strings.end
            (ntuples,) = _U32.unpack_from(buffer, at)
            self._tuple_offsets_at = at + 4
            at = self._tuple_offsets_at + 4 * (ntuples + 1)
            (nids,) = _U32.unpack_from(buffer, at)
            self._tuple_ids_at = at + 4
            at = self._tuple_ids_at + 4 * nids
            (self.event_count,) = _U32.unpack_from(buffer, at)
            self._events_at = at + 4
            at = self._events_at + _EVENT.size * self.event_count
            (self.script_count,) = _U32.unpack_from(buffer, at)
            directory_at = at + 4
            if directory_at + _SCRIPT.size * self.script_count > len(buffer):
                raise DataPlaneError(f"{self.path}: directory overruns payload")
            self._directory: Dict[Tuple[str, bool], Tuple[int, int, int]] = {}
            for index in range(self.script_count):
                digest, flags, offset, length = _SCRIPT.unpack_from(
                    buffer, directory_at + _SCRIPT.size * index
                )
                key = (digest.hex(), bool(flags & _FLAG_UNPACK))
                self._directory[key] = (flags, offset, length)
        except (struct.error, DataPlaneError) as exc:
            self._artifact.close()
            if isinstance(exc, DataPlaneError):
                raise
            raise DataPlaneError(f"{self.path}: malformed sections: {exc}") from exc
        self._buffer = buffer
        self._tuple_cache: Dict[int, Tuple[str, ...]] = {}

    def __contains__(self, key: Tuple[str, bool]) -> bool:
        return key in self._directory

    def keys(self):
        """Every ``(digest, unpack)`` key the segment holds."""
        return self._directory.keys()

    def _context_tuple(self, tuple_index: int) -> Tuple[str, ...]:
        cached = self._tuple_cache.get(tuple_index)
        if cached is None:
            low, high = struct.unpack_from(
                "<II", self._buffer, self._tuple_offsets_at + 4 * tuple_index
            )
            ids = struct.unpack_from(
                f"<{high - low}I", self._buffer, self._tuple_ids_at + 4 * low
            )
            cached = tuple(self._strings.get(i) for i in ids)
            if self._tuple_intern is not None:
                cached = self._tuple_intern(cached)
            self._tuple_cache[tuple_index] = cached
        return cached

    def get(self, digest: str, unpack: bool) -> Optional[EventEntry]:
        """Decode one script's entry, or ``None`` if the key is absent."""
        found = self._directory.get((digest, unpack))
        if found is None:
            return None
        flags, offset, length = found
        # One bulk unpack for the whole range beats a per-event
        # ``Struct.unpack_from`` loop by a wide margin.
        ids = struct.unpack_from(
            f"<{3 * length}I", self._buffer, self._events_at + _EVENT.size * offset
        )
        sget = self._strings.get
        tget = self._context_tuple
        events = [
            (sget(ids[at]), sget(ids[at + 1]), tget(ids[at + 2]))
            for at in range(0, 3 * length, 3)
        ]
        count("rows_read", length)
        return (
            digest,
            unpack,
            events,
            bool(flags & _FLAG_PARSE_ERROR),
            bool(flags & _FLAG_UNPACK_BAILOUT),
        )

    @property
    def mapped_bytes(self) -> int:
        return self._artifact.size

    def close(self) -> None:
        self._artifact.close()


class PackedEventCache:
    """A directory of event segments with one merged key index."""

    def __init__(
        self, root, extractor_version: int, string_intern=None, tuple_intern=None
    ) -> None:
        self.root = Path(root) / f"v{extractor_version}" / "segments"
        self.extractor_version = extractor_version
        self._string_intern = string_intern
        self._tuple_intern = tuple_intern
        self._readers: List[EventSegmentReader] = []
        self._index: Dict[Tuple[str, bool], EventSegmentReader] = {}
        self._sequence = _counter()
        if self.root.is_dir():
            for path in sorted(self.root.glob(f"*{SEGMENT_SUFFIX}")):
                self._mount(path)

    def _mount(self, path: Path) -> Optional[EventSegmentReader]:
        try:
            reader = EventSegmentReader(
                path,
                string_intern=self._string_intern,
                tuple_intern=self._tuple_intern,
            )
        except DataPlaneError:
            return None  # skipped segments degrade to cache misses
        if reader.extractor_version != self.extractor_version:
            reader.close()
            return None
        self._readers.append(reader)
        for key in reader.keys():
            self._index[key] = reader
        return reader

    def lookup(self, digest: str, unpack: bool) -> Optional[EventEntry]:
        """One script's cached entry, decoded lazily from its segment."""
        reader = self._index.get((digest, unpack))
        if reader is None:
            return None
        return reader.get(digest, unpack)

    def store(self, entries: Sequence[EventEntry]) -> int:
        """Append one extraction batch as a new segment; returns entries written.

        The fresh segment is immediately re-mounted through the verifying
        mmap reader, so subsequent lookups in this process serve from the
        packed file and any write corruption surfaces here, not in a
        later run.
        """
        if not entries:
            return 0
        name = f"seg-{os.getpid()}-{next(self._sequence):06d}{SEGMENT_SUFFIX}"
        path = self.root / name
        try:
            write_event_segment(path, entries, self.extractor_version)
        except OSError:
            return 0
        if self._mount(path) is None:  # pragma: no cover - verify-on-write guard
            return 0
        return len(entries)

    @property
    def segments(self) -> int:
        return len(self._readers)

    def close(self) -> None:
        for reader in self._readers:
            reader.close()
        self._readers = []
        self._index = {}
