"""``python -m repro.dataplane`` — inspect packed artifacts.

::

    python -m repro.dataplane inspect <file> [--json]

Prints the verified header (kind, version, payload size, sha256) plus a
kind-specific summary: script/event counts for event segments, slot/row
counts for request tables, entry counts for source tables.
"""

from __future__ import annotations

import argparse
import json
import sys

from .events import EventSegmentReader
from .format import KIND_EVENTS, KIND_REQUESTS, KIND_SOURCES, DataPlaneError, inspect_header
from .requests import RequestTable
from .sources import SourceTable


def _summarize(path: str) -> dict:
    info = inspect_header(path)
    kind = info["kind"]
    if kind == "events":
        with_reader = EventSegmentReader(path)
        try:
            info.update(
                extractor_version=with_reader.extractor_version,
                scripts=with_reader.script_count,
                events=with_reader.event_count,
            )
        finally:
            with_reader.close()
    elif kind == "requests":
        with RequestTable(path) as table:
            info.update(slots=table.slot_count, rows=table.row_count)
    elif kind == "sources":
        with SourceTable(path) as table:
            info.update(sources=len(table))
    elif kind == "snapshot":
        from ..serve.snapshot import SnapshotReader

        with SnapshotReader(path) as reader:
            info.update(
                seed=reader.seed,
                network_lines=len(reader.network_lines()),
                element_lines=len(reader.element_lines()),
                detector_bytes=int(reader.meta.get("detector_bytes", 0)),
            )
    return info


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dataplane",
        description="Inspect packed data-plane artifacts.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    inspect = commands.add_parser("inspect", help="print an artifact's header")
    inspect.add_argument("file", nargs="+", help="artifact path(s)")
    inspect.add_argument(
        "--json", action="store_true", help="emit one JSON object per file"
    )
    options = parser.parse_args(argv)

    status = 0
    for path in options.file:
        try:
            info = _summarize(path)
        except (DataPlaneError, OSError) as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            status = 1
            continue
        if options.json:
            print(json.dumps(info, sort_keys=True))
        else:
            print(f"{info['path']}:")
            for key in sorted(k for k in info if k != "path"):
                print(f"  {key}: {info[key]}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
