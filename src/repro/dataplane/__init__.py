"""The packed binary data plane (mmap-able artifacts, zero third-party deps).

The packed formats share one verified container (:mod:`.format`):

- :mod:`.events` — token-event segments backing the §5 feature cache
- :mod:`.requests` — columnar HAR request tables for §4 replay
- :mod:`.sources` — script source tables for zero-copy pool shards
- ``kind=graph`` — artifact-graph run-cache entries (:mod:`repro.graph.store`)
- ``kind=snapshot`` — the serving snapshot every shard of the sharded
  daemon mmaps read-only (:mod:`repro.serve.snapshot`)

``python -m repro.dataplane inspect <file>`` prints any artifact's header
and a kind-specific summary.
"""

from .format import (
    FORMAT_VERSION,
    KIND_EVENTS,
    KIND_NAMES,
    KIND_REQUESTS,
    KIND_SNAPSHOT,
    KIND_SOURCES,
    MAGIC,
    DataPlaneError,
    MappedArtifact,
    inspect_header,
    write_artifact,
)
from .events import EventSegmentReader, PackedEventCache, write_event_segment
from .requests import RequestTable, write_request_table
from .sources import SourceTable, write_source_table

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "KIND_EVENTS",
    "KIND_REQUESTS",
    "KIND_SNAPSHOT",
    "KIND_SOURCES",
    "KIND_NAMES",
    "DataPlaneError",
    "MappedArtifact",
    "inspect_header",
    "write_artifact",
    "EventSegmentReader",
    "PackedEventCache",
    "write_event_segment",
    "RequestTable",
    "write_request_table",
    "SourceTable",
    "write_source_table",
]
