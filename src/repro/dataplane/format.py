"""The packed-artifact container every data-plane format shares.

Every data-plane file is one atomic artifact::

    +--------------------------------------------------------------+
    | header (48 bytes):                                           |
    |   magic  b"RDPK"          4s                                 |
    |   kind   (format id)      u16   events / requests / sources  |
    |   version                 u16   container layout revision    |
    |   payload_length          u64                                |
    |   payload_sha256          32s   integrity check at open      |
    +--------------------------------------------------------------+
    | payload (format-specific sections, always little-endian,     |
    | unaligned ``struct`` records — no third-party deps)          |
    +--------------------------------------------------------------+

Writers build the payload in memory, stamp the header, and publish with
the tmp-file + ``os.replace`` pattern, so readers never observe a partial
artifact. Readers ``mmap`` the file read-only, verify the magic, kind,
version, length, and payload SHA-256 once at open, then decode sections
*lazily* — a consumer that touches three scripts of a ten-thousand-script
segment decodes three scripts.

Every open, row decode, and encode is accounted in the unified metrics
registry under ``dataplane.*`` (``bytes_mapped``, ``rows_read``,
``encode_ms``, ``files_mapped``, ``bytes_written``, ``integrity_errors``),
so a run manifest shows exactly how much of the binary plane a run
touched.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import struct
import time
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..obs.metrics import get_metrics

MAGIC = b"RDPK"
#: Container layout revision (bump on incompatible header/section changes).
FORMAT_VERSION = 1

#: Format kinds carried in the header.
KIND_EVENTS = 1  # packed token-event segment (§5 feature cache)
KIND_REQUESTS = 2  # columnar HAR request table (§4 replay)
KIND_SOURCES = 3  # script source table (worker-pool attachment)
KIND_GRAPH = 4  # artifact-graph node value (run cache)
KIND_SNAPSHOT = 5  # packed serving snapshot (rule lines + detector)

KIND_NAMES = {
    KIND_EVENTS: "events",
    KIND_REQUESTS: "requests",
    KIND_SOURCES: "sources",
    KIND_GRAPH: "graph",
    KIND_SNAPSHOT: "snapshot",
}

HEADER = struct.Struct("<4sHHQ32s")

_U32 = struct.Struct("<I")


class DataPlaneError(ValueError):
    """A data-plane artifact is missing, truncated, corrupt, or mismatched."""


def count(name: str, delta: int = 1) -> None:
    """Increment a ``dataplane.*`` counter in the unified registry."""
    if delta:
        get_metrics().count(f"dataplane.{name}", delta)


# -- writing ----------------------------------------------------------------------


def pack_u32s(values: Sequence[int]) -> bytes:
    """A little-endian u32 array."""
    return struct.pack(f"<{len(values)}I", *values)


def pack_string_table(strings: Sequence[str]) -> bytes:
    """Pack a string table: count, offsets[count+1] into the blob, blob.

    Offsets are relative to the blob start, so readers can slice any
    string without decoding its neighbours.
    """
    blobs = [text.encode("utf-8", "replace") for text in strings]
    offsets = [0]
    for blob in blobs:
        offsets.append(offsets[-1] + len(blob))
    return b"".join(
        (_U32.pack(len(blobs)), pack_u32s(offsets), b"".join(blobs))
    )


def write_artifact(path: Union[str, Path], kind: int, payload: bytes) -> int:
    """Atomically publish one artifact; returns bytes written.

    The payload is hashed into the header so a reader detects any
    corruption at open; the tmp + ``os.replace`` publish means a crash
    mid-write never leaves a half-artifact under the final name.
    """
    path = Path(path)
    started = time.perf_counter()
    header = HEADER.pack(
        MAGIC, kind, FORMAT_VERSION, len(payload), hashlib.sha256(payload).digest()
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    with open(tmp, "wb") as handle:
        handle.write(header)
        handle.write(payload)
    os.replace(tmp, path)
    written = len(header) + len(payload)
    count("bytes_written", written)
    count("files_written")
    get_metrics().count(
        "dataplane.encode_ms", int(round((time.perf_counter() - started) * 1000))
    )
    return written


# -- reading ----------------------------------------------------------------------


class MappedArtifact:
    """One mmap'd artifact: header verified at open, payload exposed raw."""

    def __init__(
        self,
        path: Union[str, Path],
        expect_kind: Optional[int] = None,
        verify: bool = True,
    ) -> None:
        self.path = Path(path)
        try:
            self._handle = open(self.path, "rb")
        except OSError as exc:
            raise DataPlaneError(f"cannot open {self.path}: {exc}") from exc
        try:
            self._mm = mmap.mmap(self._handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError) as exc:  # empty or unmappable file
            self._handle.close()
            raise DataPlaneError(f"cannot map {self.path}: {exc}") from exc
        view = memoryview(self._mm)
        try:
            if len(view) < HEADER.size:
                raise DataPlaneError(f"{self.path}: truncated header")
            magic, kind, version, length, digest = HEADER.unpack_from(view, 0)
            if magic != MAGIC:
                raise DataPlaneError(f"{self.path}: bad magic {magic!r}")
            if version != FORMAT_VERSION:
                raise DataPlaneError(
                    f"{self.path}: unsupported version {version} "
                    f"(reader speaks {FORMAT_VERSION})"
                )
            if expect_kind is not None and kind != expect_kind:
                raise DataPlaneError(
                    f"{self.path}: kind {KIND_NAMES.get(kind, kind)!r}, "
                    f"expected {KIND_NAMES.get(expect_kind, expect_kind)!r}"
                )
            if HEADER.size + length > len(view):
                raise DataPlaneError(f"{self.path}: truncated payload")
            # Hash through a transient slice so no exported buffer outlives
            # a failed verify (mmap.close refuses while slices exist).
            if verify and hashlib.sha256(
                view[HEADER.size : HEADER.size + length]
            ).digest() != digest:
                raise DataPlaneError(f"{self.path}: payload sha256 mismatch")
        except DataPlaneError:
            count("integrity_errors")
            view.release()
            self.close()
            raise
        self.kind = kind
        self.version = version
        self.payload = view[HEADER.size : HEADER.size + length]
        self.size = HEADER.size + length
        count("files_mapped")
        count("bytes_mapped", self.size)

    def close(self) -> None:
        """Release the mapping (safe to call twice)."""
        payload = getattr(self, "payload", None)
        if payload is not None:
            payload.release()
            self.payload = None
        mm = getattr(self, "_mm", None)
        if mm is not None:
            mm.close()
            self._mm = None
        handle = getattr(self, "_handle", None)
        if handle is not None:
            handle.close()
            self._handle = None

    def __enter__(self) -> "MappedArtifact":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class StringTable:
    """Lazy reader over a packed string table inside a payload buffer.

    Decodes one string per first access; repeated reads hit a per-table
    cache, so equal ids share one ``str`` object — which is what lets the
    feature store's interning keep packed-loaded event streams
    pickle-byte-identical to freshly extracted ones. An optional
    ``intern`` callable runs once per decoded string (before caching),
    so a consumer can canonicalise at the decode boundary instead of
    re-walking every record afterwards.
    """

    def __init__(self, buffer, offset: int, intern=None) -> None:
        self._buffer = buffer
        self._intern = intern
        (self.count,) = _U32.unpack_from(buffer, offset)
        self._offsets_at = offset + 4
        self._blob_at = self._offsets_at + 4 * (self.count + 1)
        (blob_length,) = struct.unpack_from(
            "<I", buffer, self._offsets_at + 4 * self.count
        )
        #: Payload offset of the first byte after this table.
        self.end = self._blob_at + blob_length
        self._cache: List[Optional[str]] = [None] * self.count

    def get(self, index: int) -> str:
        """The string with id ``index`` (decoded once, then cached)."""
        cached = self._cache[index]
        if cached is None:
            low, high = struct.unpack_from(
                "<II", self._buffer, self._offsets_at + 4 * index
            )
            start = self._blob_at
            cached = bytes(self._buffer[start + low : start + high]).decode("utf-8")
            if self._intern is not None:
                cached = self._intern(cached)
            self._cache[index] = cached
        return cached

    def __len__(self) -> int:
        return self.count


def read_u32s(buffer, offset: int, count_: int) -> tuple:
    """Decode ``count_`` little-endian u32 values at ``offset``."""
    return struct.unpack_from(f"<{count_}I", buffer, offset)


def inspect_header(path: Union[str, Path]) -> dict:
    """Header fields of an artifact without mapping the payload."""
    path = Path(path)
    with open(path, "rb") as handle:
        raw = handle.read(HEADER.size)
    if len(raw) < HEADER.size:
        raise DataPlaneError(f"{path}: truncated header")
    magic, kind, version, length, digest = HEADER.unpack(raw)
    if magic != MAGIC:
        raise DataPlaneError(f"{path}: bad magic {magic!r}")
    return {
        "path": str(path),
        "kind": KIND_NAMES.get(kind, f"unknown({kind})"),
        "version": version,
        "payload_bytes": length,
        "sha256": digest.hex(),
        "file_bytes": path.stat().st_size,
    }
