"""Columnar HAR request tables — §4 replay without JSON parsing.

One table holds every HTTP request of one crawl, slotted by
``(domain, month)`` exactly like the HAR files on disk. Payload
sections, in order::

    string table                  (URLs, methods, MIME types — shared)
    slot index:
        u32 nslots; nslots × (u32 domain_id, u16 year, u8 month, pad,
                              u32 row_offset, u32 row_count)
    row array:
        u32 nrows; nrows × (u32 url_id, u32 method_id, u16 status, pad2,
                            u32 mime_id, i64 size)

Rows keep the HAR's entry order (and duplicates), so
:meth:`RequestTable.request_urls` reproduces ``HarFile.request_urls``
byte for byte; the replay path then applies the same Wayback truncation
it applies to HAR-loaded records, which is what keeps coverage results
digest-identical across the two planes.
"""

from __future__ import annotations

import struct
from datetime import date
from pathlib import Path
from typing import Dict, Iterator, List, Tuple, Union

from .format import (
    KIND_REQUESTS,
    DataPlaneError,
    MappedArtifact,
    StringTable,
    count,
    pack_string_table,
    write_artifact,
)

_U32 = struct.Struct("<I")
_SLOT = struct.Struct("<IHBxII")
_ROW = struct.Struct("<IIHxxIq")

TABLE_NAME = "requests.rdpr"

#: One decoded request row: (url, method, status, mime_type, size).
RequestRow = Tuple[str, str, int, str, int]


def write_request_table(path: Union[str, Path], result) -> int:
    """Pack every usable record's HAR entries; returns slots written.

    ``result`` is a :class:`~repro.wayback.crawler.CrawlResult`; records
    without a HAR (any non-OK status) are skipped — the JSON index stays
    the source of truth for slot statuses.
    """
    strings: Dict[str, int] = {}

    def string_id(text: str) -> int:
        found = strings.get(text)
        if found is None:
            found = len(strings)
            strings[text] = found
        return found

    slot_records = bytearray()
    row_records = bytearray()
    slots = 0
    rows = 0
    for record in result.records:
        if not record.usable or record.har is None:
            continue
        offset = rows
        for entry in record.har.entries:
            row_records += _ROW.pack(
                string_id(entry.request.url),
                string_id(entry.request.method),
                entry.response.status,
                string_id(entry.response.mime_type),
                entry.response.body_size,
            )
            rows += 1
        slot_records += _SLOT.pack(
            string_id(record.domain),
            record.month.year,
            record.month.month,
            offset,
            rows - offset,
        )
        slots += 1

    payload = b"".join(
        (
            pack_string_table(list(strings)),
            _U32.pack(slots),
            bytes(slot_records),
            _U32.pack(rows),
            bytes(row_records),
        )
    )
    write_artifact(path, KIND_REQUESTS, payload)
    return slots


class RequestTable:
    """Read-only mmap view over one crawl's packed request table."""

    def __init__(self, path: Union[str, Path]) -> None:
        self._artifact = MappedArtifact(path, expect_kind=KIND_REQUESTS)
        buffer = self._artifact.payload
        self.path = Path(path)
        try:
            self._strings = StringTable(buffer, 0)
            (self.slot_count,) = _U32.unpack_from(buffer, self._strings.end)
            self._slots_at = self._strings.end + 4
            at = self._slots_at + _SLOT.size * self.slot_count
            (self.row_count,) = _U32.unpack_from(buffer, at)
            self._rows_at = at + 4
            if self._rows_at + _ROW.size * self.row_count > len(buffer):
                raise DataPlaneError(f"{self.path}: row array overruns payload")
        except (struct.error, DataPlaneError) as exc:
            self._artifact.close()
            if isinstance(exc, DataPlaneError):
                raise
            raise DataPlaneError(f"{self.path}: malformed sections: {exc}") from exc
        self._buffer = buffer
        self._index: Dict[Tuple[str, date], Tuple[int, int]] = {}
        for index in range(self.slot_count):
            domain_id, year, month, offset, length = _SLOT.unpack_from(
                buffer, self._slots_at + _SLOT.size * index
            )
            key = (self._strings.get(domain_id), date(year, month, 1))
            self._index[key] = (offset, length)

    # -- queries ---------------------------------------------------------------

    def slots(self) -> List[Tuple[str, date]]:
        """Every ``(domain, month)`` slot the table holds, in file order."""
        return list(self._index)

    def __contains__(self, key: Tuple[str, date]) -> bool:
        return key in self._index

    def urls(self, domain: str, month: date) -> List[str]:
        """One slot's request URLs in HAR entry order (duplicates kept)."""
        offset, length = self._index[(domain, month)]
        at = self._rows_at + _ROW.size * offset
        urls = []
        for _ in range(length):
            (url_id,) = _U32.unpack_from(self._buffer, at)
            urls.append(self._strings.get(url_id))
            at += _ROW.size
        count("rows_read", length)
        return urls

    def request_urls(self, domain: str, month: date) -> List[str]:
        """One slot's URLs, duplicates removed — ``HarFile.request_urls``."""
        seen = set()
        deduped = []
        for url in self.urls(domain, month):
            if url not in seen:
                seen.add(url)
                deduped.append(url)
        return deduped

    def scan(self) -> Iterator[RequestRow]:
        """Decode every row — the full-crawl request scan §4 statistics run."""
        at = self._rows_at
        for _ in range(self.row_count):
            url_id, method_id, status, mime_id, size = _ROW.unpack_from(
                self._buffer, at
            )
            yield (
                self._strings.get(url_id),
                self._strings.get(method_id),
                status,
                self._strings.get(mime_id),
                size,
            )
            at += _ROW.size
        count("rows_read", self.row_count)

    @property
    def mapped_bytes(self) -> int:
        return self._artifact.size

    def close(self) -> None:
        self._artifact.close()

    def __enter__(self) -> "RequestTable":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
