"""Packed script-source tables — zero-copy shard hand-off for worker pools.

A source table is the simplest data-plane artifact: one string table of
script sources. The feature store writes the extraction batch to a table
once, then fans out ``(path, lo, hi, unpack)`` index ranges; each worker
maps the table read-only and decodes only its own slice, so no script
source is ever pickled across the process boundary.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence, Union

from .format import (
    KIND_SOURCES,
    MappedArtifact,
    StringTable,
    count,
    pack_string_table,
    write_artifact,
)


def write_source_table(path: Union[str, Path], sources: Sequence[str]) -> int:
    """Pack script sources into one table artifact; returns bytes written."""
    return write_artifact(path, KIND_SOURCES, pack_string_table(sources))


class SourceTable:
    """Read-only mmap view over a packed source table."""

    def __init__(self, path: Union[str, Path]) -> None:
        self._artifact = MappedArtifact(path, expect_kind=KIND_SOURCES)
        self.path = Path(path)
        self._strings = StringTable(self._artifact.payload, 0)

    def get(self, index: int) -> str:
        """The source with id ``index``, decoded on first access."""
        count("rows_read")
        return self._strings.get(index)

    def __len__(self) -> int:
        return len(self._strings)

    def close(self) -> None:
        self._artifact.close()

    def __enter__(self) -> "SourceTable":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
