"""Hierarchical tracing: a span tree with wall/CPU time and counters.

A :class:`Span` is a context manager recording one named unit of work —
a pipeline stage, one crawled site, one experiment — with wall-clock and
CPU durations, free-form attributes, and integer counters. Spans nest:
entering a span while another is open attaches it as a child, so a run
produces a tree like::

    run
    └── stage:crawl            wall=2.41s cpu=2.39s  slots=24000
        ├── site:news0.example
        └── site:shop1.example

Tracing is **off by default** and engineered to stay off the hot path:
:func:`span` returns the shared :data:`NULL_SPAN` singleton when the
global tracer is disabled, so an instrumented call site costs one
attribute check and no allocation. Exceptions are never swallowed — a
span that exits through an exception records ``status="error"`` plus the
exception repr and re-raises.

Worker processes cannot share the parent's tree; they report flat
payload dicts (see :meth:`Span.add_child_payload`) that the parent grafts
on as pre-closed children, keeping shard attribution in the tree without
cross-process plumbing.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional


class Span:
    """One timed, attributed node of the span tree (context manager)."""

    __slots__ = (
        "name",
        "attributes",
        "counters",
        "children",
        "wall_s",
        "cpu_s",
        "status",
        "error",
        "_tracer",
        "_wall0",
        "_cpu0",
    )

    def __init__(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.counters: Dict[str, int] = {}
        self.children: List["Span"] = []
        self.wall_s: Optional[float] = None
        self.cpu_s: Optional[float] = None
        self.status = "open"
        self.error: Optional[str] = None
        self._tracer = tracer
        self._wall0 = 0.0
        self._cpu0 = 0.0

    # -- recording ----------------------------------------------------------

    def set(self, **attributes: Any) -> "Span":
        """Attach/overwrite attributes; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def count(self, name: str, delta: int = 1) -> None:
        """Increment a per-span counter."""
        self.counters[name] = self.counters.get(name, 0) + delta

    def add_child_payload(self, name: str, **payload: Any) -> "Span":
        """Graft a pre-closed child (e.g. a worker shard's report).

        ``wall_s``/``cpu_s`` keys become the child's durations; every
        other key becomes an attribute.
        """
        child = Span(name)
        child.wall_s = float(payload.pop("wall_s", 0.0))
        child.cpu_s = float(payload.pop("cpu_s", 0.0))
        child.attributes = dict(payload)
        child.status = "ok"
        self.children.append(child)
        return child

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "Span":
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        if self._tracer is not None:
            self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.process_time() - self._cpu0
        if exc_type is None:
            self.status = "ok"
        else:
            self.status = "error"
            self.error = repr(exc)
        if self._tracer is not None:
            self._tracer._pop(self)
        return False  # never suppress

    # -- export -------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """Recursive plain-dict form (JSON-ready)."""
        data: Dict[str, Any] = {
            "name": self.name,
            "status": self.status,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
        }
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        if self.counters:
            data["counters"] = dict(self.counters)
        if self.error is not None:
            data["error"] = self.error
        if self.children:
            data["children"] = [child.as_dict() for child in self.children]
        return data

    def render(self, indent: int = 0) -> str:
        """Human-readable one-line-per-span tree (scalar attributes shown)."""
        wall = f"{self.wall_s:.3f}s" if self.wall_s is not None else "-"
        cpu = f"{self.cpu_s:.3f}s" if self.cpu_s is not None else "-"
        extras = ""
        scalars = {
            key: value
            for key, value in self.attributes.items()
            if isinstance(value, (int, float, str, bool))
        }
        if scalars:
            extras += " " + " ".join(
                f"{key}={value:.4g}" if isinstance(value, float) else f"{key}={value}"
                for key, value in sorted(scalars.items())
            )
        if self.counters:
            extras += " " + " ".join(
                f"{key}={value}" for key, value in sorted(self.counters.items())
            )
        if self.status == "error":
            extras += f" ERROR {self.error}"
        lines = [f"{'  ' * indent}{self.name}  wall={wall} cpu={cpu}{extras}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


class _NullSpan:
    """Shared no-op stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def count(self, name: str, delta: int = 1) -> None:
        pass

    def add_child_payload(self, name: str, **payload: Any) -> "_NullSpan":
        return self


#: The singleton every disabled-tracer call site receives.
NULL_SPAN = _NullSpan()


class Tracer:
    """Owns the span stack and the finished root spans of one run."""

    def __init__(
        self,
        enabled: bool = False,
        sink: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        self.enabled = enabled
        #: Completed top-level spans, in completion order.
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        #: Optional callable receiving a dict per span start/end (the
        #: manifest's JSONL event log plugs in here).
        self.sink = sink

    def span(self, name: str, **attributes: Any):
        """Open a span (or return :data:`NULL_SPAN` when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(name, attributes, tracer=self)

    def reset(self) -> None:
        """Drop all recorded spans (the stack must be empty)."""
        self.roots = []
        self._stack = []

    def as_dicts(self) -> List[Dict[str, Any]]:
        """Every finished root span, JSON-ready."""
        return [root.as_dict() for root in self.roots]

    def render(self) -> str:
        """The whole forest, human-readable."""
        return "\n".join(root.render() for root in self.roots)

    # -- span plumbing ------------------------------------------------------

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)
        if self.sink is not None:
            self.sink(
                {"event": "span_start", "name": span.name, "depth": len(self._stack)}
            )

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits (exception unwinding through
        # several spans closes them innermost-first, which is in-order;
        # anything else is a bug we refuse to crash telemetry over).
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)
        if not self._stack and span not in self.roots and span._tracer is self:
            if not any(span in root.children for root in self.roots):
                self.roots.append(span)
        if self.sink is not None:
            self.sink(
                {
                    "event": "span_end",
                    "name": span.name,
                    "status": span.status,
                    "wall_s": span.wall_s,
                    "cpu_s": span.cpu_s,
                    "counters": dict(span.counters),
                }
            )


#: Process-global tracer; disabled until :func:`enable_tracing`.
_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def tracing_enabled() -> bool:
    """Whether :func:`span` currently records anything."""
    return _TRACER.enabled


def enable_tracing(sink: Optional[Callable[[Dict[str, Any]], None]] = None) -> Tracer:
    """Turn the global tracer on (fresh tree) and return it."""
    _TRACER.enabled = True
    _TRACER.sink = sink
    _TRACER.reset()
    return _TRACER


def disable_tracing() -> None:
    """Turn the global tracer off (recorded spans are kept)."""
    _TRACER.enabled = False
    _TRACER.sink = None


def span(name: str, **attributes: Any):
    """Open a span on the global tracer (no-op singleton when disabled)."""
    if not _TRACER.enabled:
        return NULL_SPAN
    return Span(name, attributes, tracer=_TRACER)


def emit_event(kind: str, /, **payload: Any) -> None:
    """Forward a custom event to the active tracer sink (no-op otherwise).

    Lets instrumented layers stream structured one-off events — a crawl
    retry, a circuit opening, a journal resume — into the run manifest's
    JSONL log next to the span events, without holding a manifest
    handle. Costs one branch when tracing is off or no sink is attached.
    """
    if _TRACER.enabled and _TRACER.sink is not None:
        _TRACER.sink({"event": kind, **payload})
