"""``logging`` configuration for the CLI's ``-v``/``--quiet`` flags.

The experiment artifacts themselves are *program output* and stay on
stdout via ``print``; everything diagnostic (stage progress, knob
warnings, crawl heartbeats) goes through the ``repro`` logger hierarchy
to **stderr**, so piping artifacts to a file never mixes in telemetry.

Verbosity ladder (default output unchanged from the pre-logging CLI):

====== ========= =======================================
flag   verbosity level
====== ========= =======================================
-q     -1        ERROR (suppress knob warnings too)
(none) 0         WARNING (only misconfiguration warnings)
-v     1         INFO (stage starts/finishes, progress)
-vv    2         DEBUG (per-site / per-revision detail)
====== ========= =======================================
"""

from __future__ import annotations

import logging
import sys

#: The root of every logger in this package.
ROOT_LOGGER = "repro"

_LEVELS = {-1: logging.ERROR, 0: logging.WARNING, 1: logging.INFO, 2: logging.DEBUG}


def configure_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Install one stderr handler on the ``repro`` logger (idempotent)."""
    level = _LEVELS.get(max(min(verbosity, 2), -1), logging.WARNING)
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level)
    logger.propagate = False
    target = stream if stream is not None else sys.stderr
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(target)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    logger.addHandler(handler)
    return logger
