"""Fixed-bucket histograms with deterministic merge semantics.

The rule-level observability plane needs distributions, not just sums:
match latency per call, candidate checks per call, hits per rule. A
:class:`Histogram` is the cheapest structure that answers percentile
questions while staying *mergeable across worker processes*: a fixed,
sorted tuple of bucket upper bounds plus one overflow bucket, so merging
two histograms is element-wise addition of their count vectors and is
associative and commutative — shard merge order can never change the
result, the same discipline the counter plane pins.

Two stock bucket families:

- :func:`ns_buckets` — log-spaced wall-clock nanosecond bounds (256 ns to
  ~8.6 s in powers of four) for match-latency observations;
- :func:`count_buckets` — 0 plus powers of two up to 65536 for discrete
  work counts (candidates probed per call, hits per rule).

Serialization (:meth:`Histogram.as_dict`) is key-ordered and built from
plain ints, so ``json.dumps(..., sort_keys=True)`` of two equal
histograms is byte-identical.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

Number = Union[int, float]


def ns_buckets() -> Tuple[int, ...]:
    """Log-spaced nanosecond bounds: 4**4 .. 4**16 (256 ns .. ~4.3 s)."""
    return tuple(4**exp for exp in range(4, 17))


def count_buckets() -> Tuple[int, ...]:
    """Discrete-work bounds: 0 plus powers of two up to 65536."""
    return (0,) + tuple(2**exp for exp in range(17))


class Histogram:
    """Counts of observations per fixed bucket, plus an overflow bucket.

    ``bounds`` are inclusive upper bounds in strictly increasing order;
    an observation lands in the first bucket whose bound is >= the value.
    Values beyond the last bound land in the overflow bucket, so the
    count vector has ``len(bounds) + 1`` entries and no observation is
    ever dropped.
    """

    __slots__ = ("bounds", "counts", "sum", "total")

    def __init__(self, bounds: Optional[Sequence[Number]] = None) -> None:
        bounds = tuple(count_buckets() if bounds is None else bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds not strictly increasing: {bounds!r}")
        self.bounds: Tuple[Number, ...] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum: Number = 0
        self.total: int = 0

    # -- recording ----------------------------------------------------------

    def observe(self, value: Number, count: int = 1) -> None:
        """Record ``count`` observations of ``value``."""
        self.counts[bisect_left(self.bounds, value)] += count
        self.sum += value * count
        self.total += count

    # -- merging ------------------------------------------------------------

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram in (bucket-wise sum); returns self.

        Only histograms over identical bounds merge — anything else
        would silently redistribute mass.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"bucket bounds differ: {self.bounds!r} != {other.bounds!r}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.sum += other.sum
        self.total += other.total
        return self

    def subtract(self, earlier: "Histogram") -> "Histogram":
        """A new histogram holding this minus an earlier snapshot."""
        if earlier.bounds != self.bounds:
            raise ValueError(
                f"bucket bounds differ: {self.bounds!r} != {earlier.bounds!r}"
            )
        delta = Histogram(self.bounds)
        delta.counts = [a - b for a, b in zip(self.counts, earlier.counts)]
        delta.sum = self.sum - earlier.sum
        delta.total = self.total - earlier.total
        return delta

    def copy(self) -> "Histogram":
        clone = Histogram(self.bounds)
        clone.counts = list(self.counts)
        clone.sum = self.sum
        clone.total = self.total
        return clone

    # -- reading ------------------------------------------------------------

    def __len__(self) -> int:
        return self.total

    def __eq__(self, other) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.bounds == other.bounds
            and self.counts == other.counts
            and self.sum == other.sum
            and self.total == other.total
        )

    def percentile(self, p: Number) -> Optional[Number]:
        """The upper bound of the bucket holding the p-th percentile.

        Returns ``None`` for an empty histogram. Overflow observations
        report the last finite bound (a floor, clearly conservative).
        """
        if self.total == 0:
            return None
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p!r}")
        rank = max(1, -(-self.total * p // 100))  # ceil without floats
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                return self.bounds[min(index, len(self.bounds) - 1)]
        return self.bounds[-1]  # pragma: no cover - rank <= total always lands

    def quantiles(self) -> Dict[str, Optional[Number]]:
        """The standard report triple: p50 / p90 / p99."""
        return {
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def mean(self) -> Optional[float]:
        """Exact mean of the observed values (not bucket-quantized)."""
        return self.sum / self.total if self.total else None

    # -- serialization ------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form; key-ordered, JSON-ready, round-trippable."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Histogram":
        """Rebuild a histogram from :meth:`as_dict` output (validated)."""
        bounds = data.get("bounds")
        counts = data.get("counts")
        if not isinstance(bounds, (list, tuple)) or not isinstance(
            counts, (list, tuple)
        ):
            raise ValueError("histogram dict needs 'bounds' and 'counts' lists")
        hist = cls(tuple(bounds))
        if len(counts) != len(hist.counts):
            raise ValueError(
                f"count vector length {len(counts)} != {len(hist.counts)}"
            )
        hist.counts = [int(count) for count in counts]
        hist.sum = data.get("sum", 0)
        total = data.get("total")
        hist.total = int(total) if total is not None else sum(hist.counts)
        return hist


def merge_histogram_dicts(
    target: Dict[str, Dict[str, object]],
    source: Mapping[str, Mapping[str, object]],
) -> None:
    """Merge serialized histograms into serialized histograms, in place.

    The worker-payload path ships histograms as plain dicts; merging in
    the serialized domain (sorted by name) keeps the parent free of
    ordering sensitivity without materialising Histogram objects twice.
    """
    for name in sorted(source):
        incoming = Histogram.from_dict(source[name])
        existing = target.get(name)
        if existing is None:
            target[name] = incoming.as_dict()
        else:
            target[name] = Histogram.from_dict(existing).merge(incoming).as_dict()
