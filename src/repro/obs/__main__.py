"""Manifest tooling CLI: ``python -m repro.obs validate run.json [run.jsonl]``.

Exit status 0 when every named file validates, 1 otherwise (errors on
stderr). ``*.json`` files are checked against the run-manifest schema —
``repro.run-manifest/2`` (histogram metrics + optional ``rules``
section) or the older ``repro.run-manifest/1``, selected by the file's
own ``schema`` field; ``*.jsonl`` files are checked as event logs (monotonic ``seq``,
numeric ``ts``, and only known event kinds — including the resilience
layer's ``crawl_retry`` / ``crawl_circuit_open`` / ``crawl_resume``
events). CI uses this to gate the traced-run artifacts it uploads.
"""

from __future__ import annotations

import sys

from .manifest import load_and_validate


def main(argv) -> int:
    if not argv or argv[0] in ("-h", "--help") or argv[0] != "validate":
        print(__doc__)
        return 0 if (argv and argv[0] in ("-h", "--help")) else 2
    paths = argv[1:]
    if not paths:
        print("validate: no manifest paths given", file=sys.stderr)
        return 2
    failed = False
    for path in paths:
        errors = load_and_validate(path)
        if errors:
            failed = True
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
