"""Manifest tooling CLI: ``python -m repro.obs validate run.json``.

Exit status 0 when every named manifest validates against the
``repro.run-manifest/1`` schema, 1 otherwise (errors on stderr). CI uses
this to gate the traced-run artifact it uploads.
"""

from __future__ import annotations

import sys

from .manifest import load_and_validate


def main(argv) -> int:
    if not argv or argv[0] in ("-h", "--help") or argv[0] != "validate":
        print(__doc__)
        return 0 if (argv and argv[0] in ("-h", "--help")) else 2
    paths = argv[1:]
    if not paths:
        print("validate: no manifest paths given", file=sys.stderr)
        return 2
    failed = False
    for path in paths:
        errors = load_and_validate(path)
        if errors:
            failed = True
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
