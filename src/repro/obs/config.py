"""One validation point for the ``REPRO_*`` environment knobs.

Before this module, ``REPRO_SCALE`` was parsed in ``experiments.context``
and ``REPRO_WORKERS``/``REPRO_MATCHER_CACHE`` in ``analysis.perf``, each
silently falling back to its default on garbage input — a typo like
``REPRO_WORKERS=fuor`` quietly ran serial. Every knob — scale, workers,
the matcher/history/feature caches, the serve daemon's
port/batch/linger/workers surface, and the resilience layer's retry/
journal/fault-injection settings — now resolves here: invalid or out-of-range
values still fall back to the documented
defaults (so behaviour is unchanged), but a warning is logged **once per
(variable, raw value)** so the operator learns about the typo, and the
resolved values are recorded in the run manifest via
:func:`config_snapshot`.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Set, Tuple

logger = logging.getLogger("repro.obs.config")

#: Documented defaults (kept in sync with docs/ARCHITECTURE.md's knob table).
DEFAULT_SCALE = 0.08
DEFAULT_WORKERS = 1
DEFAULT_MATCHER_CACHE = 512
DEFAULT_HISTORY_CACHE = 65536
DEFAULT_MAX_RETRIES = 3
DEFAULT_RETRY_BASE_MS = 50.0
DEFAULT_DATA_PLANE = False
DEFAULT_POOL_PERSIST = False
DEFAULT_RULE_STATS = False
DEFAULT_SERVE_PORT = 7675
DEFAULT_SERVE_BATCH = 64
DEFAULT_SERVE_WAIT_MS = 2.0
DEFAULT_SERVE_WORKERS = 0
DEFAULT_SERVE_SHARDS = 0

#: The knobs this module owns, in manifest order.
KNOBS = (
    "REPRO_SCALE",
    "REPRO_WORKERS",
    "REPRO_MATCHER_CACHE",
    "REPRO_HISTORY_CACHE",
    "REPRO_FEATURE_CACHE",
    "REPRO_RUN_CACHE",
    "REPRO_LIST_PATCH",
    "REPRO_DATA_PLANE",
    "REPRO_POOL_PERSIST",
    "REPRO_RULE_STATS",
    "REPRO_RULE_STATS_DIR",
    "REPRO_SERVE_PORT",
    "REPRO_SERVE_BATCH",
    "REPRO_SERVE_WAIT_MS",
    "REPRO_SERVE_WORKERS",
    "REPRO_SERVE_SHARDS",
    "REPRO_MAX_RETRIES",
    "REPRO_RETRY_BASE_MS",
    "REPRO_CRAWL_JOURNAL",
    "REPRO_FAULT_SEED",
)

#: Raw strings accepted as boolean knob values.
_TRUE_WORDS = ("1", "true", "yes", "on")
_FALSE_WORDS = ("0", "false", "no", "off")

#: (variable, raw value) pairs already warned about in this process.
_WARNED: Set[Tuple[str, str]] = set()


def _warn_once(var: str, raw: str, fallback) -> None:
    key = (var, raw)
    if key in _WARNED:
        return
    _WARNED.add(key)
    logger.warning("invalid %s=%r; using %r", var, raw, fallback)


def _resolve_float(var: str, raw: Optional[str], default: float, minimum: float) -> float:
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        _warn_once(var, raw, default)
        return default
    if value < minimum or value != value:  # NaN guard
        _warn_once(var, raw, default)
        return default
    return value


def _resolve_int(var: str, raw: Optional[str], default: int, minimum: int, clamp: bool = False) -> int:
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        _warn_once(var, raw, default)
        return default
    if value < minimum:
        fallback = minimum if clamp else default
        _warn_once(var, raw, fallback)
        return fallback
    return value


def repro_scale(environ: Optional[Mapping[str, str]] = None) -> float:
    """Experiment scale from ``REPRO_SCALE`` (default 0.08, must be > 0)."""
    environ = os.environ if environ is None else environ
    return _resolve_float(
        "REPRO_SCALE", environ.get("REPRO_SCALE"), DEFAULT_SCALE, minimum=1e-9
    )


def repro_workers(environ: Optional[Mapping[str, str]] = None) -> int:
    """§4 replay worker count from ``REPRO_WORKERS`` (default 1 = serial)."""
    environ = os.environ if environ is None else environ
    return _resolve_int(
        "REPRO_WORKERS", environ.get("REPRO_WORKERS"), DEFAULT_WORKERS, minimum=1
    )


def matcher_cache_size(environ: Optional[Mapping[str, str]] = None) -> int:
    """Matcher/adblocker LRU capacity from ``REPRO_MATCHER_CACHE`` (≥ 2)."""
    environ = os.environ if environ is None else environ
    return _resolve_int(
        "REPRO_MATCHER_CACHE",
        environ.get("REPRO_MATCHER_CACHE"),
        DEFAULT_MATCHER_CACHE,
        minimum=2,
        clamp=True,
    )


def history_cache_size(environ: Optional[Mapping[str, str]] = None) -> int:
    """§3 parsed-rule cache capacity from ``REPRO_HISTORY_CACHE`` (≥ 2).

    Bounds the process-global content-addressed cache mapping each
    distinct rule line to its parsed rule, Figure 1 type, and targeted
    domains (``repro.filterlist.parser``). Values below the minimum are
    clamped rather than rejected, matching ``REPRO_MATCHER_CACHE``.
    """
    environ = os.environ if environ is None else environ
    return _resolve_int(
        "REPRO_HISTORY_CACHE",
        environ.get("REPRO_HISTORY_CACHE"),
        DEFAULT_HISTORY_CACHE,
        minimum=2,
        clamp=True,
    )


def feature_cache_dir(environ: Optional[Mapping[str, str]] = None) -> Optional[str]:
    """§5 feature-cache directory from ``REPRO_FEATURE_CACHE``.

    Unset or empty disables the on-disk cache (``None``). The directory
    need not exist (the store creates it), but a path that exists and is
    *not* a directory is rejected with a one-time warning.
    """
    environ = os.environ if environ is None else environ
    return _resolve_dir("REPRO_FEATURE_CACHE", environ.get("REPRO_FEATURE_CACHE"))


def run_cache_dir(environ: Optional[Mapping[str, str]] = None) -> Optional[str]:
    """Artifact-graph run-cache directory from ``REPRO_RUN_CACHE``.

    Unset or empty disables run-cache persistence (``None``): the
    artifact graph (:mod:`repro.graph`) still computes node keys but
    every node is computed in-process. When set, every campaign stage
    and experiment artifact persists under this directory keyed by
    ``(inputs-digest, code-version)``, so a fresh process warm-starts
    from whatever an earlier run already computed. The directory need
    not exist (the graph creates it), but a path that exists and is
    *not* a directory is rejected with a one-time warning.
    """
    environ = os.environ if environ is None else environ
    return _resolve_dir("REPRO_RUN_CACHE", environ.get("REPRO_RUN_CACHE"))


def list_patch_file(environ: Optional[Mapping[str, str]] = None) -> Optional[str]:
    """Filter-list patch file from ``REPRO_LIST_PATCH``.

    Unset or empty means no patch (``None``). When set, the file's
    non-comment lines are appended to the Anti-Adblock Killer history as
    one extra delta revision after list generation — the "one-line list
    change" workload: every downstream artifact (coverage, live, corpus,
    tables) sees the edit, while the archive/crawl stages keep their
    run-cache keys. A path that does not point at a readable file is
    rejected with a one-time warning.
    """
    environ = os.environ if environ is None else environ
    raw = environ.get("REPRO_LIST_PATCH")
    if not raw:
        return None
    if not os.path.isfile(raw):
        _warn_once("REPRO_LIST_PATCH", raw, None)
        return None
    return raw


def _resolve_dir(var: str, raw: Optional[str]) -> Optional[str]:
    if not raw:
        return None
    if os.path.exists(raw) and not os.path.isdir(raw):
        _warn_once(var, raw, None)
        return None
    return raw


def _resolve_bool(var: str, raw: Optional[str], default: bool) -> bool:
    if raw is None or raw == "":
        return default
    word = raw.strip().lower()
    if word in _TRUE_WORDS:
        return True
    if word in _FALSE_WORDS:
        return False
    _warn_once(var, raw, default)
    return default


def data_plane_enabled(environ: Optional[Mapping[str, str]] = None) -> bool:
    """Binary data-plane toggle from ``REPRO_DATA_PLANE`` (default off).

    When on, the hot stores persist packed mmap-able artifacts
    (:mod:`repro.dataplane`) instead of JSON: the §5 feature cache writes
    packed token-event segments and :class:`~repro.wayback.store.DataRepository`
    writes the columnar request table alongside the HAR files. Artifacts
    produced through either path are digest-identical; the knob only
    changes the interchange format.
    """
    environ = os.environ if environ is None else environ
    return _resolve_bool(
        "REPRO_DATA_PLANE", environ.get("REPRO_DATA_PLANE"), DEFAULT_DATA_PLANE
    )


def pool_persist(environ: Optional[Mapping[str, str]] = None) -> bool:
    """Persistent worker-pool toggle from ``REPRO_POOL_PERSIST`` (default off).

    When on (and ``REPRO_WORKERS`` > 1), parallel fan-outs share one
    long-lived fork pool per process instead of creating and tearing one
    down per run; workers keep their built state (matchers, mmap
    attachments) warm across fan-outs. Results are identical either way.
    """
    environ = os.environ if environ is None else environ
    return _resolve_bool(
        "REPRO_POOL_PERSIST", environ.get("REPRO_POOL_PERSIST"), DEFAULT_POOL_PERSIST
    )


def rule_stats_enabled(environ: Optional[Mapping[str, str]] = None) -> bool:
    """Rule-level stats toggle from ``REPRO_RULE_STATS`` (default off).

    When on, the matcher/adblocker layers report per-rule hit counts,
    candidate-check counts, and match-latency histograms into the
    process-global :class:`~repro.analysis.rulestats.RuleStatsCollector`
    (the "filter the filters" plane). Experiment artifacts are
    digest-identical either way; the knob only adds telemetry.
    """
    environ = os.environ if environ is None else environ
    return _resolve_bool(
        "REPRO_RULE_STATS", environ.get("REPRO_RULE_STATS"), DEFAULT_RULE_STATS
    )


def rule_stats_dir(environ: Optional[Mapping[str, str]] = None) -> Optional[str]:
    """Rule-stats accumulator directory from ``REPRO_RULE_STATS_DIR``.

    Unset or empty keeps stats in-process only (``None``). When set (and
    ``REPRO_RULE_STATS=1``), each run folds its collected payload into a
    content-addressed JSON accumulator under this directory, so stats
    aggregate across the full §4 replay at scale — multiple invocations,
    one report. The directory need not exist, but a path that exists and
    is *not* a directory is rejected with a one-time warning.
    """
    environ = os.environ if environ is None else environ
    return _resolve_dir("REPRO_RULE_STATS_DIR", environ.get("REPRO_RULE_STATS_DIR"))


def serve_port(environ: Optional[Mapping[str, str]] = None) -> int:
    """Serve-daemon TCP port from ``REPRO_SERVE_PORT`` (default 7675).

    0 is valid and means "an ephemeral port chosen by the OS" (the
    daemon prints the bound port at startup) — useful for tests and for
    running several daemons on one host. Values above 65535 warn once
    and fall back to the default.
    """
    environ = os.environ if environ is None else environ
    raw = environ.get("REPRO_SERVE_PORT")
    value = _resolve_int("REPRO_SERVE_PORT", raw, DEFAULT_SERVE_PORT, minimum=0)
    if value > 65535:
        _warn_once("REPRO_SERVE_PORT", raw, DEFAULT_SERVE_PORT)
        return DEFAULT_SERVE_PORT
    return value


def serve_batch_size(environ: Optional[Mapping[str, str]] = None) -> int:
    """Serve-daemon max batch size from ``REPRO_SERVE_BATCH`` (≥ 1).

    The batcher dispatches a batch as soon as this many queries are
    pending (or the linger window closes, whichever comes first). 1
    degenerates to the naive one-query-per-call path.
    """
    environ = os.environ if environ is None else environ
    return _resolve_int(
        "REPRO_SERVE_BATCH",
        environ.get("REPRO_SERVE_BATCH"),
        DEFAULT_SERVE_BATCH,
        minimum=1,
        clamp=True,
    )


def serve_wait_ms(environ: Optional[Mapping[str, str]] = None) -> float:
    """Serve-daemon batch linger from ``REPRO_SERVE_WAIT_MS`` (≥ 0).

    How long the batcher waits for more queries before dispatching a
    partial batch. 0 disables the linger entirely: every dispatch takes
    whatever is queued at that instant.
    """
    environ = os.environ if environ is None else environ
    return _resolve_float(
        "REPRO_SERVE_WAIT_MS",
        environ.get("REPRO_SERVE_WAIT_MS"),
        DEFAULT_SERVE_WAIT_MS,
        minimum=0.0,
    )


def serve_workers(environ: Optional[Mapping[str, str]] = None) -> int:
    """Serve-daemon worker processes from ``REPRO_SERVE_WORKERS`` (≥ 0).

    0 (the default) answers every batch inline in the daemon process;
    ≥ 2 fans batches across a dedicated
    :class:`~repro.analysis.pool.PersistentPool` of fork workers, each
    holding its own warm matcher/detector state (1 behaves like 0 — one
    worker buys nothing over inline).
    """
    environ = os.environ if environ is None else environ
    return _resolve_int(
        "REPRO_SERVE_WORKERS",
        environ.get("REPRO_SERVE_WORKERS"),
        DEFAULT_SERVE_WORKERS,
        minimum=0,
    )


def serve_shards(environ: Optional[Mapping[str, str]] = None) -> int:
    """Serve-daemon shard count from ``REPRO_SERVE_SHARDS`` (≥ 0).

    0 (the default) and 1 both serve from a single process; ≥ 2 boots a
    :class:`~repro.serve.shard.ShardSupervisor` forking that many full
    daemon processes, all accepting on one port (``SO_REUSEPORT`` where
    available) from one mmap'd snapshot container. Each shard is
    GIL-bound, so shards ≈ cores is the useful ceiling.
    """
    environ = os.environ if environ is None else environ
    return _resolve_int(
        "REPRO_SERVE_SHARDS",
        environ.get("REPRO_SERVE_SHARDS"),
        DEFAULT_SERVE_SHARDS,
        minimum=0,
    )


def max_retries(environ: Optional[Mapping[str, str]] = None) -> int:
    """Crawl retry allowance from ``REPRO_MAX_RETRIES`` (default 3, ≥ 0).

    0 disables retrying entirely: any transient fault degrades its slot
    on first occurrence (the circuit breaker still applies).
    """
    environ = os.environ if environ is None else environ
    return _resolve_int(
        "REPRO_MAX_RETRIES",
        environ.get("REPRO_MAX_RETRIES"),
        DEFAULT_MAX_RETRIES,
        minimum=0,
    )


def retry_base_ms(environ: Optional[Mapping[str, str]] = None) -> float:
    """First-retry backoff delay from ``REPRO_RETRY_BASE_MS`` (default 50, ≥ 0)."""
    environ = os.environ if environ is None else environ
    return _resolve_float(
        "REPRO_RETRY_BASE_MS",
        environ.get("REPRO_RETRY_BASE_MS"),
        DEFAULT_RETRY_BASE_MS,
        minimum=0.0,
    )


def crawl_journal_dir(environ: Optional[Mapping[str, str]] = None) -> Optional[str]:
    """Checkpoint-journal directory from ``REPRO_CRAWL_JOURNAL``.

    Unset or empty disables journaling (``None``). The directory holds
    one append-only JSONL journal per ingest scope (``wayback.jsonl``,
    ``live.jsonl``, ``corpus.jsonl``); it need not exist, but a path
    that exists and is *not* a directory is rejected with a one-time
    warning.
    """
    environ = os.environ if environ is None else environ
    return _resolve_dir("REPRO_CRAWL_JOURNAL", environ.get("REPRO_CRAWL_JOURNAL"))


def fault_seed(environ: Optional[Mapping[str, str]] = None) -> Optional[int]:
    """Fault-injection seed from ``REPRO_FAULT_SEED`` (unset = disabled).

    Any integer enables the deterministic fault-injection dev mode with
    that schedule seed; an invalid value warns once and leaves injection
    disabled (never silently faulting a real run).
    """
    environ = os.environ if environ is None else environ
    raw = environ.get("REPRO_FAULT_SEED")
    if raw is None or raw == "":
        return None
    try:
        return int(raw)
    except ValueError:
        _warn_once("REPRO_FAULT_SEED", raw, None)
        return None


@dataclass(frozen=True)
class ConfigSnapshot:
    """The resolved run configuration, as recorded in the manifest."""

    scale: float
    workers: int
    matcher_cache: int
    #: §3 parsed-rule cache capacity (``REPRO_HISTORY_CACHE``).
    history_cache: int = DEFAULT_HISTORY_CACHE
    feature_cache: Optional[str] = None
    #: Artifact-graph run-cache directory (``REPRO_RUN_CACHE``).
    run_cache: Optional[str] = None
    #: Filter-list patch file (``REPRO_LIST_PATCH``).
    list_patch: Optional[str] = None
    #: Packed binary interchange for the hot stores (``REPRO_DATA_PLANE``).
    data_plane: bool = DEFAULT_DATA_PLANE
    #: One long-lived worker pool per process (``REPRO_POOL_PERSIST``).
    pool_persist: bool = DEFAULT_POOL_PERSIST
    #: Per-rule hit/cost accounting (``REPRO_RULE_STATS``).
    rule_stats: bool = DEFAULT_RULE_STATS
    #: Cross-run rule-stats accumulator directory (``REPRO_RULE_STATS_DIR``).
    rule_stats_dir: Optional[str] = None
    #: Serve-daemon TCP port (``REPRO_SERVE_PORT``; 0 = ephemeral).
    serve_port: int = DEFAULT_SERVE_PORT
    #: Serve-daemon max batch size (``REPRO_SERVE_BATCH``).
    serve_batch: int = DEFAULT_SERVE_BATCH
    #: Serve-daemon batch linger in milliseconds (``REPRO_SERVE_WAIT_MS``).
    serve_wait_ms: float = DEFAULT_SERVE_WAIT_MS
    #: Serve-daemon worker processes (``REPRO_SERVE_WORKERS``; 0 = inline).
    serve_workers: int = DEFAULT_SERVE_WORKERS
    #: Serve-daemon shard processes (``REPRO_SERVE_SHARDS``; 0/1 = single).
    serve_shards: int = DEFAULT_SERVE_SHARDS
    max_retries: int = DEFAULT_MAX_RETRIES
    retry_base_ms: float = DEFAULT_RETRY_BASE_MS
    #: Checkpoint-journal directory (holds wayback/live/corpus journals),
    #: so two runs are comparable from ``run.json`` alone.
    crawl_journal: Optional[str] = None
    #: Fault-injection schedule seed (``None`` = injection disabled).
    fault_seed: Optional[int] = None
    #: Raw environment strings actually present (pre-validation), so a
    #: manifest shows both what the operator set and what the run used.
    raw_env: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "scale": self.scale,
            "workers": self.workers,
            "matcher_cache": self.matcher_cache,
            "history_cache": self.history_cache,
            "feature_cache": self.feature_cache,
            "run_cache": self.run_cache,
            "list_patch": self.list_patch,
            "data_plane": self.data_plane,
            "pool_persist": self.pool_persist,
            "rule_stats": self.rule_stats,
            "rule_stats_dir": self.rule_stats_dir,
            "serve_port": self.serve_port,
            "serve_batch": self.serve_batch,
            "serve_wait_ms": self.serve_wait_ms,
            "serve_workers": self.serve_workers,
            "serve_shards": self.serve_shards,
            "max_retries": self.max_retries,
            "retry_base_ms": self.retry_base_ms,
            "crawl_journal": self.crawl_journal,
            "fault_seed": self.fault_seed,
            "raw_env": dict(self.raw_env),
        }


def config_snapshot(environ: Optional[Mapping[str, str]] = None) -> ConfigSnapshot:
    """Resolve every knob (warning once on invalid values) in one shot."""
    environ = os.environ if environ is None else environ
    return ConfigSnapshot(
        scale=repro_scale(environ),
        workers=repro_workers(environ),
        matcher_cache=matcher_cache_size(environ),
        history_cache=history_cache_size(environ),
        feature_cache=feature_cache_dir(environ),
        run_cache=run_cache_dir(environ),
        list_patch=list_patch_file(environ),
        data_plane=data_plane_enabled(environ),
        pool_persist=pool_persist(environ),
        rule_stats=rule_stats_enabled(environ),
        rule_stats_dir=rule_stats_dir(environ),
        serve_port=serve_port(environ),
        serve_batch=serve_batch_size(environ),
        serve_wait_ms=serve_wait_ms(environ),
        serve_workers=serve_workers(environ),
        serve_shards=serve_shards(environ),
        max_retries=max_retries(environ),
        retry_base_ms=retry_base_ms(environ),
        crawl_journal=crawl_journal_dir(environ),
        fault_seed=fault_seed(environ),
        raw_env={var: environ[var] for var in KNOBS if var in environ},
    )
