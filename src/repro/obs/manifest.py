"""Machine-readable run manifests: a JSONL event log plus ``run.json``.

A manifest makes a measurement run auditable after the fact: which code
(git SHA), which configuration (seed, resolved ``REPRO_*`` knobs), which
stages ran for how long, what every experiment produced (SHA-256 of the
rendered artifact), and what the unified metrics registry accumulated.
Two outputs:

- **events** (``<out>.jsonl``) — an append-only JSONL log written while
  the run progresses: one object per stage/span/artifact event, each
  stamped with a monotonic sequence number and wall-clock time. Useful
  for tailing long campaigns and for post-hoc timeline reconstruction.
- **``run.json``** — the final manifest, written once at the end.

The schema is versioned and checked by :func:`validate_manifest` — a
hand-rolled structural validator so CI can gate on manifest integrity
without a jsonschema dependency. Current writes use
``repro.run-manifest/2``, which adds a ``metrics.histograms`` section
(serialized :class:`~repro.obs.hist.Histogram` objects) and optional
top-level ``rules`` (rule-stats summary) and ``graph`` (artifact-graph
per-node outcome) sections; v1 manifests from older runs still validate
under the v1 rules. Validate from the command
line with ``python -m repro.obs validate run.json``.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional

SCHEMA_V1 = "repro.run-manifest/1"
SCHEMA_V2 = "repro.run-manifest/2"
#: The schema new manifests are written with.
SCHEMA = SCHEMA_V2
#: Every schema :func:`validate_manifest` accepts.
KNOWN_SCHEMAS = frozenset({SCHEMA_V1, SCHEMA_V2})


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit SHA, or ``None`` outside a checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=cwd,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else None


def artifact_digest(text: str) -> str:
    """SHA-256 hex digest of a rendered experiment artifact."""
    return hashlib.sha256(text.encode("utf-8", "replace")).hexdigest()


class RunManifest:
    """Accumulates one run's provenance and writes it to disk."""

    def __init__(self, path, events_path=None) -> None:
        self.path = Path(path)
        self.events_path = (
            Path(events_path)
            if events_path is not None
            else self.path.with_suffix(".jsonl")
        )
        self.created = datetime.now(timezone.utc).isoformat(timespec="seconds")
        self.stages: List[Dict[str, Any]] = []
        self.artifacts: Dict[str, Dict[str, Any]] = {}
        self._seq = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Truncate any stale event log from a previous run at this path.
        self.events_path.write_text("")
        self.event("run_start", manifest=str(self.path))

    # -- the JSONL event log ------------------------------------------------

    def event(self, kind: str, /, **payload: Any) -> None:
        """Append one event line (monotonic ``seq``, wall-clock ``ts``)."""
        record = {"seq": self._seq, "ts": time.time(), "event": kind}
        record.update(payload)
        self._seq += 1
        with self.events_path.open("a") as handle:
            handle.write(json.dumps(record, default=str) + "\n")

    def sink(self, payload: Dict[str, Any]) -> None:
        """Tracer-sink adapter: log a span payload carrying its own kind.

        :class:`repro.obs.trace.Tracer` emits single-dict events whose
        ``event`` key names the kind; unpack it into :meth:`event`.
        """
        payload = dict(payload)
        kind = payload.pop("event", "span")
        self.event(kind, **payload)

    # -- accumulating -------------------------------------------------------

    def record_stage(
        self, name: str, wall_s: float, cpu_s: Optional[float] = None, **attrs: Any
    ) -> None:
        """Record one named pipeline stage's duration (and log the event)."""
        entry: Dict[str, Any] = {"name": name, "wall_s": wall_s}
        if cpu_s is not None:
            entry["cpu_s"] = cpu_s
        if attrs:
            entry["attributes"] = attrs
        self.stages.append(entry)
        self.event("stage", **entry)

    def record_artifact(
        self, experiment: str, rendered: str, wall_s: Optional[float] = None
    ) -> None:
        """Record one experiment's rendered-artifact digest."""
        entry: Dict[str, Any] = {
            "sha256": artifact_digest(rendered),
            "bytes": len(rendered.encode("utf-8", "replace")),
        }
        if wall_s is not None:
            entry["wall_s"] = wall_s
        self.artifacts[experiment] = entry
        self.event("artifact", experiment=experiment, **entry)

    # -- finalizing ---------------------------------------------------------

    def finalize(
        self,
        *,
        seed: Optional[int] = None,
        config: Optional[Dict[str, Any]] = None,
        metrics: Optional[Dict[str, Any]] = None,
        spans: Optional[List[Dict[str, Any]]] = None,
        experiments: Optional[List[str]] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Write ``run.json`` and return the manifest dict."""
        # Normalize the metrics block to the v2 shape so callers built
        # against v1 (no histograms section) still write valid manifests.
        metrics = dict(metrics) if metrics else {}
        for bucket in ("counters", "gauges", "histograms"):
            metrics.setdefault(bucket, {})
        manifest: Dict[str, Any] = {
            "schema": SCHEMA,
            "created": self.created,
            "finished": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "git_sha": git_sha(),
            "seed": seed,
            "config": config or {},
            "experiments": experiments or [],
            "stages": self.stages,
            "artifacts": self.artifacts,
            "metrics": metrics,
            "spans": spans or [],
            "events_path": self.events_path.name,
        }
        if extra:
            manifest.update(extra)
        self.event("run_end", stages=len(self.stages), artifacts=len(self.artifacts))
        self.path.write_text(json.dumps(manifest, indent=2, default=str) + "\n")
        return manifest


# -- schema validation ----------------------------------------------------------

#: top-level key -> required python type(s)
_TOP_LEVEL = {
    "schema": str,
    "created": str,
    "finished": str,
    "config": dict,
    "experiments": list,
    "stages": list,
    "artifacts": dict,
    "metrics": dict,
    "spans": list,
}


def validate_manifest(manifest: Dict[str, Any]) -> List[str]:
    """Structural check of a ``run.json`` dict; returns error strings."""
    errors: List[str] = []
    if not isinstance(manifest, dict):
        return ["manifest is not a JSON object"]
    for key, expected in _TOP_LEVEL.items():
        if key not in manifest:
            errors.append(f"missing key: {key}")
        elif not isinstance(manifest[key], expected):
            errors.append(f"{key}: expected {expected.__name__}")
    if errors:
        return errors
    schema = manifest["schema"]
    if schema not in KNOWN_SCHEMAS:
        errors.append(
            f"schema: expected one of {sorted(KNOWN_SCHEMAS)}, got {schema!r}"
        )
        return errors
    for index, stage in enumerate(manifest["stages"]):
        if not isinstance(stage, dict) or "name" not in stage:
            errors.append(f"stages[{index}]: missing name")
            continue
        if not isinstance(stage.get("wall_s"), (int, float)):
            errors.append(f"stages[{index}] ({stage['name']}): missing wall_s")
    for name, artifact in manifest["artifacts"].items():
        if not isinstance(artifact, dict):
            errors.append(f"artifacts[{name}]: not an object")
            continue
        sha = artifact.get("sha256")
        if not (isinstance(sha, str) and len(sha) == 64):
            errors.append(f"artifacts[{name}]: bad sha256")
        if not isinstance(artifact.get("bytes"), int):
            errors.append(f"artifacts[{name}]: bad bytes")
    metrics = manifest["metrics"]
    for bucket in ("counters", "gauges"):
        if not isinstance(metrics.get(bucket), dict):
            errors.append(f"metrics.{bucket}: expected dict")
    if schema == SCHEMA_V2:
        histograms = metrics.get("histograms")
        if not isinstance(histograms, dict):
            errors.append("metrics.histograms: expected dict (v2)")
        else:
            for name, hist in histograms.items():
                errors.extend(_validate_histogram(hist, f"metrics.histograms[{name}]"))
        if "rules" in manifest:
            errors.extend(_validate_rules_section(manifest["rules"]))
        if "graph" in manifest:
            errors.extend(_validate_graph_section(manifest["graph"]))
        if "serve" in manifest:
            errors.extend(_validate_serve_section(manifest["serve"]))
    config = manifest["config"]
    for knob, kind in (
        ("scale", (int, float)),
        ("workers", int),
        ("matcher_cache", int),
        ("history_cache", int),
        ("feature_cache", (str, type(None))),
        ("rule_stats", bool),
        ("rule_stats_dir", (str, type(None))),
        ("serve_port", int),
        ("serve_batch", int),
        ("serve_wait_ms", (int, float)),
        ("serve_workers", int),
        ("serve_shards", int),
        ("max_retries", int),
        ("retry_base_ms", (int, float)),
        ("crawl_journal", (str, type(None))),
        ("fault_seed", (int, type(None))),
        ("run_cache", (str, type(None))),
        ("list_patch", (str, type(None))),
    ):
        if knob in config and not isinstance(config[knob], kind):
            errors.append(f"config.{knob}: wrong type")
    for index, span in enumerate(manifest["spans"]):
        errors.extend(_validate_span(span, f"spans[{index}]"))
    return errors


def _validate_histogram(hist: Any, where: str) -> List[str]:
    """Structural check of one serialized histogram (v2 metrics section)."""
    if not isinstance(hist, dict):
        return [f"{where}: not an object"]
    errors: List[str] = []
    bounds = hist.get("bounds")
    counts = hist.get("counts")
    if not (isinstance(bounds, list) and bounds):
        errors.append(f"{where}: missing bounds")
    if not isinstance(counts, list):
        errors.append(f"{where}: missing counts")
    elif isinstance(bounds, list) and len(counts) != len(bounds) + 1:
        errors.append(f"{where}: counts length != bounds length + 1")
    elif not all(isinstance(count, int) and count >= 0 for count in counts):
        errors.append(f"{where}: non-integer bucket count")
    if not isinstance(hist.get("total"), int):
        errors.append(f"{where}: missing integer total")
    if not isinstance(hist.get("sum"), (int, float)):
        errors.append(f"{where}: missing numeric sum")
    return errors


def _validate_rules_section(rules: Any) -> List[str]:
    """Structural check of the optional v2 ``rules`` summary section."""
    if not isinstance(rules, dict):
        return ["rules: not an object"]
    errors: List[str] = []
    totals = rules.get("totals")
    if not isinstance(totals, dict):
        errors.append("rules.totals: expected dict")
    else:
        for key, value in totals.items():
            if not isinstance(value, int):
                errors.append(f"rules.totals.{key}: expected int")
    lists = rules.get("lists", {})
    if not isinstance(lists, dict):
        errors.append("rules.lists: expected dict")
    else:
        for name, entry in lists.items():
            if not isinstance(entry, dict):
                errors.append(f"rules.lists[{name}]: not an object")
    return errors


#: Per-node outcomes the manifest's ``graph`` section may report.
_GRAPH_OUTCOMES = frozenset({"hit", "miss", "stored", "computed", "volatile", "error"})


def _validate_graph_section(graph: Any) -> List[str]:
    """Structural check of the optional v2 ``graph`` summary section."""
    if not isinstance(graph, dict):
        return ["graph: not an object"]
    errors: List[str] = []
    if not isinstance(graph.get("cache_dir"), (str, type(None))):
        errors.append("graph.cache_dir: expected str or null")
    nodes = graph.get("nodes")
    if not isinstance(nodes, dict):
        return errors + ["graph.nodes: expected dict"]
    for name, row in nodes.items():
        where = f"graph.nodes[{name}]"
        if not isinstance(row, dict):
            errors.append(f"{where}: not an object")
            continue
        key = row.get("key")
        if not (isinstance(key, str) and len(key) == 64):
            errors.append(f"{where}: bad key")
        if row.get("outcome") not in _GRAPH_OUTCOMES:
            errors.append(f"{where}: bad outcome {row.get('outcome')!r}")
        if not isinstance(row.get("bytes"), int):
            errors.append(f"{where}: bad bytes")
    return errors


#: Counter fields the v2 ``serve`` section must carry as non-negative ints.
_SERVE_COUNTERS = ("queries", "batches", "reloads", "dropped")


def _validate_serve_section(serve: Any) -> List[str]:
    """Structural check of the optional v2 ``serve`` summary section.

    Written by the serve daemon on shutdown (:mod:`repro.serve`): the
    port it listened on, the epoch it finished at, and the query/batch/
    reload/dropped counters a smoke test gates on.
    """
    if not isinstance(serve, dict):
        return ["serve: not an object"]
    errors: List[str] = []
    if not isinstance(serve.get("port"), int):
        errors.append("serve.port: expected int")
    if not isinstance(serve.get("epoch"), int):
        errors.append("serve.epoch: expected int")
    if not isinstance(serve.get("workers"), int):
        errors.append("serve.workers: expected int")
    for field in _SERVE_COUNTERS:
        value = serve.get(field)
        if not (isinstance(value, int) and not isinstance(value, bool) and value >= 0):
            errors.append(f"serve.{field}: expected non-negative int")
    # A sharded deployment's section also carries the shard count and
    # the supervisor's respawn counter; both optional (absent when the
    # daemon ran single-process), both non-negative ints when present.
    for field in ("shards", "shard_restarts"):
        if field in serve:
            value = serve.get(field)
            if not (
                isinstance(value, int) and not isinstance(value, bool) and value >= 0
            ):
                errors.append(f"serve.{field}: expected non-negative int")
    return errors


def _validate_span(span: Any, where: str) -> List[str]:
    errors: List[str] = []
    if not isinstance(span, dict):
        return [f"{where}: not an object"]
    if not isinstance(span.get("name"), str):
        errors.append(f"{where}: missing name")
    if span.get("status") not in ("ok", "error", "open"):
        errors.append(f"{where}: bad status")
    for child_index, child in enumerate(span.get("children", ())):
        errors.extend(_validate_span(child, f"{where}.children[{child_index}]"))
    return errors


#: Every event kind a ``<run>.jsonl`` log may legally contain: the
#: manifest's own lifecycle events, the tracer-sink span events, and the
#: resilience layer's crawl events (retries, circuit openings, journal
#: resume/completion, injected faults).
KNOWN_EVENT_KINDS = frozenset(
    {
        "run_start",
        "run_end",
        "stage",
        "artifact",
        "span",
        "span_start",
        "span_end",
        "crawl_retry",
        "crawl_gave_up",
        "crawl_circuit_open",
        "crawl_resume",
        "crawl_fault",
        "journal_complete",
    }
)


def validate_events(lines: List[str]) -> List[str]:
    """Structural check of a JSONL event log; returns error strings.

    Every line must be a JSON object carrying a monotonically increasing
    integer ``seq``, a numeric ``ts``, and an ``event`` kind from
    :data:`KNOWN_EVENT_KINDS` — so downstream tooling can rely on the
    event vocabulary the way it relies on the ``run.json`` schema.
    """
    errors: List[str] = []
    last_seq = -1
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {line_no}: not JSON ({exc})")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {line_no}: not an object")
            continue
        seq = record.get("seq")
        if not isinstance(seq, int):
            errors.append(f"line {line_no}: missing integer seq")
        elif seq <= last_seq:
            errors.append(f"line {line_no}: seq {seq} not increasing")
        else:
            last_seq = seq
        if not isinstance(record.get("ts"), (int, float)):
            errors.append(f"line {line_no}: missing numeric ts")
        kind = record.get("event")
        if not isinstance(kind, str):
            errors.append(f"line {line_no}: missing event kind")
        elif kind not in KNOWN_EVENT_KINDS:
            errors.append(f"line {line_no}: unknown event kind {kind!r}")
    return errors


def load_and_validate(path) -> List[str]:
    """Validate a manifest (``run.json``) or event log (``*.jsonl``) file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        return [f"unreadable manifest: {exc}"]
    if path.suffix == ".jsonl":
        return validate_events(text.splitlines())
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as exc:
        return [f"unreadable manifest: {exc}"]
    return validate_manifest(manifest)
