"""A unified metrics registry: namespaced counters and gauges.

Every pipeline stage reports into one flat registry under a dotted
namespace (``crawl.slots``, ``replay.records``, ``corpus.positives``),
so one ``run.json`` can answer "what did this run do" across layers.
Three kinds of metric, with merge semantics chosen so that sharded runs
aggregate deterministically:

- **counters** — monotonically accumulated integers; merging *sums*.
- **gauges** — point-in-time floats (rates, durations); merging takes
  the *max*, matching how :class:`~repro.analysis.perf.PerfCounters`
  folds shard ``elapsed`` times.
- **histograms** — fixed-bucket distributions
  (:class:`~repro.obs.hist.Histogram`); merging sums bucket counts, so
  shard merge order cannot change the result.

Serialization (:meth:`MetricsRegistry.as_dict`) is key-sorted, so two
registries holding the same values serialize byte-identically regardless
of insertion order — the property the parallel-vs-serial regression
tests pin.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Union

from .hist import Histogram

Number = Union[int, float]


class MetricsRegistry:
    """Namespaced counter/gauge store with deterministic serialization."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- recording ----------------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        """Add ``delta`` to the counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + int(delta)

    def gauge(self, name: str, value: Number) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins locally)."""
        self._gauges[name] = float(value)

    def hist(
        self, name: str, value: Number, bounds: Optional[Sequence[Number]] = None
    ) -> None:
        """Observe ``value`` in the histogram ``name``.

        ``bounds`` picks the bucket family on first touch (default:
        :func:`~repro.obs.hist.count_buckets`); later observations
        ignore it — one histogram, one bucket layout.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(bounds)
        histogram.observe(value)

    def absorb(self, namespace: str, source: Any) -> None:
        """Fold an external source's numbers in under ``namespace.``.

        ``source`` may be a mapping or any object with ``as_dict()``
        (e.g. :class:`~repro.analysis.perf.PerfCounters` — the replay
        engine's counters become one source among many). ``int`` values
        become counters; ``float`` values (rates, durations) become
        gauges; nested mappings recurse with dotted keys (so worker
        payload dicts like ``dataplane.*`` absorb without manual
        flattening, in sorted-key order to keep merges deterministic);
        anything else is skipped.
        """
        if not isinstance(source, Mapping):
            source = source.as_dict()
        for key in sorted(source):
            value = source[key]
            full = f"{namespace}.{key}"
            if isinstance(value, Mapping):
                self.absorb(full, value)
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if isinstance(value, int):
                self.count(full, value)
            else:
                self.gauge(full, value)

    def absorb_histogram(self, name: str, histogram: Histogram) -> None:
        """Merge an externally-built histogram in under ``name``."""
        existing = self._histograms.get(name)
        if existing is None:
            self._histograms[name] = histogram.copy()
        else:
            existing.merge(histogram)

    # -- reading / merging --------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never touched)."""
        return self._counters.get(name, 0)

    def histogram(self, name: str) -> Optional[Histogram]:
        """The named histogram, or ``None`` if never observed."""
        return self._histograms.get(name)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters sum, gauges take the max,
        histograms sum bucket counts."""
        for name in sorted(other._counters):
            self.count(name, other._counters[name])
        for name in sorted(other._gauges):
            current = self._gauges.get(name)
            value = other._gauges[name]
            self._gauges[name] = value if current is None else max(current, value)
        for name in sorted(other._histograms):
            self.absorb_histogram(name, other._histograms[name])

    def reset(self) -> None:
        """Drop every metric."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """Key-sorted ``{"counters", "gauges", "histograms"}`` (JSON-ready)."""
        return {
            "counters": {key: self._counters[key] for key in sorted(self._counters)},
            "gauges": {key: self._gauges[key] for key in sorted(self._gauges)},
            "histograms": {
                key: self._histograms[key].as_dict()
                for key in sorted(self._histograms)
            },
        }

    def render(self) -> str:
        """One ``name=value`` per line; counters, gauges, then histogram
        quantile summaries, each key-sorted."""
        lines = [f"{key}={self._counters[key]}" for key in sorted(self._counters)]
        lines += [f"{key}={self._gauges[key]:.6g}" for key in sorted(self._gauges)]
        for key in sorted(self._histograms):
            histogram = self._histograms[key]
            q = histogram.quantiles()
            lines.append(
                f"{key}=p50:{q['p50']} p90:{q['p90']} p99:{q['p99']}"
                f" total:{histogram.total}"
            )
        return "\n".join(lines)


#: Process-global registry: the default sink for stage instrumentation.
#: The CLI resets it at the start of a run; tests reset it per-case.
_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _METRICS


def reset_metrics() -> MetricsRegistry:
    """Clear the global registry (start-of-run hygiene) and return it."""
    _METRICS.reset()
    return _METRICS
