"""A unified metrics registry: namespaced counters and gauges.

Every pipeline stage reports into one flat registry under a dotted
namespace (``crawl.slots``, ``replay.records``, ``corpus.positives``),
so one ``run.json`` can answer "what did this run do" across layers. Two
kinds of metric, with merge semantics chosen so that sharded runs
aggregate deterministically:

- **counters** — monotonically accumulated integers; merging *sums*.
- **gauges** — point-in-time floats (rates, durations); merging takes
  the *max*, matching how :class:`~repro.analysis.perf.PerfCounters`
  folds shard ``elapsed`` times.

Serialization (:meth:`MetricsRegistry.as_dict`) is key-sorted, so two
registries holding the same values serialize byte-identically regardless
of insertion order — the property the parallel-vs-serial regression
tests pin.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Union

Number = Union[int, float]


class MetricsRegistry:
    """Namespaced counter/gauge store with deterministic serialization."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}

    # -- recording ----------------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        """Add ``delta`` to the counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + int(delta)

    def gauge(self, name: str, value: Number) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins locally)."""
        self._gauges[name] = float(value)

    def absorb(self, namespace: str, source: Any) -> None:
        """Fold an external source's numbers in under ``namespace.``.

        ``source`` may be a mapping or any object with ``as_dict()``
        (e.g. :class:`~repro.analysis.perf.PerfCounters` — the replay
        engine's counters become one source among many). ``int`` values
        become counters; ``float`` values (rates, durations) become
        gauges; anything non-numeric is skipped.
        """
        if not isinstance(source, Mapping):
            source = source.as_dict()
        for key in sorted(source):
            value = source[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            full = f"{namespace}.{key}"
            if isinstance(value, int):
                self.count(full, value)
            else:
                self.gauge(full, value)

    # -- reading / merging --------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never touched)."""
        return self._counters.get(name, 0)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters sum, gauges take the max."""
        for name in sorted(other._counters):
            self.count(name, other._counters[name])
        for name in sorted(other._gauges):
            current = self._gauges.get(name)
            value = other._gauges[name]
            self._gauges[name] = value if current is None else max(current, value)

    def reset(self) -> None:
        """Drop every metric."""
        self._counters.clear()
        self._gauges.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges)

    def as_dict(self) -> Dict[str, Dict[str, Number]]:
        """Key-sorted ``{"counters": ..., "gauges": ...}`` (JSON-ready)."""
        return {
            "counters": {key: self._counters[key] for key in sorted(self._counters)},
            "gauges": {key: self._gauges[key] for key in sorted(self._gauges)},
        }

    def render(self) -> str:
        """One ``name=value`` per line, counters first, key-sorted."""
        lines = [f"{key}={self._counters[key]}" for key in sorted(self._counters)]
        lines += [f"{key}={self._gauges[key]:.6g}" for key in sorted(self._gauges)]
        return "\n".join(lines)


#: Process-global registry: the default sink for stage instrumentation.
#: The CLI resets it at the start of a run; tests reset it per-case.
_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _METRICS


def reset_metrics() -> MetricsRegistry:
    """Clear the global registry (start-of-run hygiene) and return it."""
    _METRICS.reset()
    return _METRICS
