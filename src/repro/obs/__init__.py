"""Pipeline-wide observability: spans, metrics, config, run manifests.

The paper's measurement campaign is a chain of expensive stages (world
synthesis, list generation, the Wayback crawl, the §4 replay, the live
crawl, the §5 corpus build). This package is the zero-dependency
telemetry layer that makes every stage attributable:

- :mod:`~repro.obs.trace` — a hierarchical span tree (wall/CPU time,
  counters, attributes) that is a no-op unless explicitly enabled;
- :mod:`~repro.obs.metrics` — a unified counter/gauge registry that
  absorbs the replay engine's :class:`~repro.analysis.perf.PerfCounters`
  as one source among many;
- :mod:`~repro.obs.config` — the single validation point for the
  ``REPRO_*`` environment knobs (warn once, never silently mis-parse);
- :mod:`~repro.obs.manifest` — a JSONL event log plus a final
  ``run.json`` capturing seed, resolved config, git SHA, per-stage
  durations, and per-experiment artifact digests;
- :mod:`~repro.obs.logconf` — ``logging`` setup for the ``-v``/``--quiet``
  CLI flags.

Nothing in here imports the rest of ``repro``; every other layer may
import ``repro.obs`` freely.
"""

from .config import ConfigSnapshot, config_snapshot
from .hist import Histogram, count_buckets, ns_buckets
from .logconf import configure_logging
from .manifest import RunManifest, validate_events, validate_manifest
from .metrics import MetricsRegistry, get_metrics, reset_metrics
from .trace import (
    NULL_SPAN,
    Span,
    Tracer,
    disable_tracing,
    emit_event,
    enable_tracing,
    get_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "ConfigSnapshot",
    "config_snapshot",
    "configure_logging",
    "Histogram",
    "count_buckets",
    "ns_buckets",
    "RunManifest",
    "validate_events",
    "validate_manifest",
    "MetricsRegistry",
    "get_metrics",
    "reset_metrics",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "disable_tracing",
    "emit_event",
    "enable_tracing",
    "get_tracer",
    "span",
    "tracing_enabled",
]
