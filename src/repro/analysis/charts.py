"""ASCII charts for the paper's figures.

No plotting stack is available offline, so the figure experiments can
render their series as terminal line charts: multiple series with distinct
markers, a scaled y-axis, and date ticks on the x-axis. Good enough to
*see* Figure 6's AAK-vs-EasyList divergence or Figure 5's declining
outdated counts.
"""

from __future__ import annotations

from datetime import date
from typing import Dict, List, Sequence, Tuple

#: Series markers, assigned in order.
MARKERS = "*o+x#@%&"


def line_chart(
    all_series: Dict[str, Dict[date, int]],
    title: str = "",
    width: int = 72,
    height: int = 16,
) -> str:
    """Render aligned month→count series as an ASCII line chart."""
    months = sorted({m for series in all_series.values() for m in series})
    if not months:
        return title or "(no data)"
    names = list(all_series)
    columns = _resample_columns(months, width)
    values = {
        name: [all_series[name].get(month, 0) for month in columns]
        for name in names
    }
    peak = max((max(vals) for vals in values.values()), default=0)
    peak = max(peak, 1)

    grid = [[" "] * len(columns) for _ in range(height)]
    for index, name in enumerate(names):
        marker = MARKERS[index % len(MARKERS)]
        for col, value in enumerate(values[name]):
            row = height - 1 - round((height - 1) * value / peak)
            if grid[row][col] == " ":
                grid[row][col] = marker

    label_width = len(str(peak))
    lines: List[str] = []
    if title:
        lines.append(title)
    for row in range(height):
        level = round(peak * (height - 1 - row) / (height - 1))
        label = str(level).rjust(label_width) if row % 4 == 0 or row == height - 1 else " " * label_width
        lines.append(f"{label} |" + "".join(grid[row]))
    lines.append(" " * label_width + " +" + "-" * len(columns))
    lines.append(" " * label_width + "  " + _x_axis(columns))
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}" for i, name in enumerate(names)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def _resample_columns(months: Sequence[date], width: int) -> List[date]:
    """Pick ≤ width evenly spaced months (always including the last)."""
    if len(months) <= width:
        return list(months)
    step = (len(months) - 1) / (width - 1)
    return [months[round(i * step)] for i in range(width)]


def _x_axis(columns: Sequence[date]) -> str:
    """Year labels positioned under their first column."""
    axis = [" "] * len(columns)
    seen_years = set()
    for index, month in enumerate(columns):
        if month.year not in seen_years and index + 4 <= len(columns):
            seen_years.add(month.year)
            for offset, ch in enumerate(str(month.year)):
                if axis[index + offset] == " ":
                    axis[index + offset] = ch
    return "".join(axis)


def cdf_chart(
    points: Sequence[Tuple[int, float]],
    title: str = "",
    width: int = 60,
    height: int = 12,
) -> str:
    """Render a CDF ((x, probability) pairs) as an ASCII curve."""
    if not points:
        return title or "(no data)"
    xs = [x for x, _ in points]
    grid = [[" "] * width for _ in range(height)]
    x_min, x_max = min(xs), max(xs)
    span = max(x_max - x_min, 1)
    for x, probability in points:
        col = round((width - 1) * (x - x_min) / span)
        row = height - 1 - round((height - 1) * probability)
        grid[row][col] = "*"
    # Connect horizontally for readability.
    for row_cells in grid:
        filled = [i for i, c in enumerate(row_cells) if c == "*"]
        for a, b in zip(filled, filled[1:]):
            for i in range(a + 1, b):
                row_cells[i] = "-"
    lines: List[str] = []
    if title:
        lines.append(title)
    for row in range(height):
        probability = (height - 1 - row) / (height - 1)
        label = f"{probability:4.0%}" if row % 3 == 0 or row == height - 1 else "    "
        lines.append(f"{label} |" + "".join(grid[row]))
    lines.append("     +" + "-" * width)
    lines.append(f"      {x_min:<{width // 2 - 3}}{x_max:>{width // 2 - 3}} (days)")
    return "\n".join(lines)
