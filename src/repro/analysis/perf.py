"""Performance instrumentation and bounded caches for the §4 replay engine.

The replay engine (``analysis.coverage``) is the hottest path in the
system: paper scale replays two list histories against ~300K archived
page loads. This module supplies the two pieces that keep that tractable
and observable:

- :class:`PerfCounters` — lightweight counters (records/s, candidate
  rules probed per URL, cache hit rates, matcher build mix) that the
  bench harness prints so ``BENCH_*`` trajectories can attribute wins.
- :class:`LRUCache` — a small bounded mapping used for the per-revision
  matcher/adblocker caches, so paper-scale runs hold a fixed number of
  matchers in memory instead of one per (list, revision).
- :func:`repro_workers` — the ``REPRO_WORKERS`` knob controlling how many
  processes shard ``CoverageAnalyzer.analyze``. The default (1) keeps the
  pipeline serial and its output bit-identical run to run.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, fields
from typing import Dict, Optional

# Knob parsing lives in obs.config (one validation point, warn-once on
# invalid values); these aliases keep the established import sites.
from ..obs.config import matcher_cache_size, repro_workers

__all__ = [
    "PerfCounters",
    "LRUCache",
    "repro_workers",
    "matcher_cache_size",
    "GLOBAL_COUNTERS",
    "get_counters",
]


@dataclass
class PerfCounters:
    """Counters describing one replay run (merged across shards)."""

    #: usable crawl records processed
    records: int = 0
    #: URL match calls answered by a matcher (block/allow passes both count)
    match_calls: int = 0
    #: candidate rules actually probed (``rule.matches`` invocations)
    candidates_probed: int = 0
    #: matchers built by scanning a full rule set
    matcher_full_builds: int = 0
    #: matchers derived from a predecessor via a revision delta
    matcher_incremental_builds: int = 0
    #: matcher cache hits (revision already materialised)
    matcher_cache_hits: int = 0
    #: adblocker cache hits / builds
    adblocker_cache_hits: int = 0
    adblocker_builds: int = 0
    #: request profiles computed / reused
    profile_builds: int = 0
    profile_hits: int = 0
    #: archived pages parsed into a DOM (records passing the element screen)
    html_parses: int = 0
    #: wall-clock seconds of the replay loop (set by the analyzer)
    elapsed: float = 0.0

    # -- derived rates ------------------------------------------------------

    def records_per_second(self) -> float:
        """Usable records replayed per wall-clock second."""
        return self.records / self.elapsed if self.elapsed > 0 else 0.0

    def probes_per_call(self) -> float:
        """Mean candidate rules probed per matcher call."""
        return (
            self.candidates_probed / self.match_calls if self.match_calls else 0.0
        )

    def matcher_hit_rate(self) -> float:
        """Fraction of matcher lookups served from the revision cache."""
        total = (
            self.matcher_cache_hits
            + self.matcher_full_builds
            + self.matcher_incremental_builds
        )
        return self.matcher_cache_hits / total if total else 0.0

    # -- aggregation ---------------------------------------------------------

    def reset(self) -> None:
        """Zero every counter (each ``analyze()`` run starts fresh)."""
        for f in fields(self):
            setattr(self, f.name, 0.0 if f.name == "elapsed" else 0)

    def snapshot(self) -> tuple:
        """A point-in-time copy of every counter (for :meth:`since`)."""
        return tuple(getattr(self, f.name) for f in fields(self))

    def since(self, snap: tuple) -> "PerfCounters":
        """Counters accumulated after ``snap`` was taken.

        Worker processes live across shards, so each shard reports the
        delta rather than the worker's lifetime totals.
        """
        delta = PerfCounters()
        for f, before in zip(fields(self), snap):
            setattr(delta, f.name, getattr(self, f.name) - before)
        return delta

    def merge(self, other: "PerfCounters") -> None:
        """Fold another shard's counters into this one (sums; max elapsed)."""
        for f in fields(self):
            if f.name == "elapsed":
                self.elapsed = max(self.elapsed, other.elapsed)
            else:
                setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> Dict[str, float]:
        """All counters plus derived rates, for bench JSON output."""
        data: Dict[str, float] = {f.name: getattr(self, f.name) for f in fields(self)}
        data["records_per_second"] = self.records_per_second()
        data["probes_per_call"] = self.probes_per_call()
        data["matcher_hit_rate"] = self.matcher_hit_rate()
        return data

    #: Counters whose totals do not depend on how the record loop was
    #: sharded: each is accumulated per record (or per domain group), and
    #: shards partition records along domain boundaries. Cache-locality
    #: counters (matcher/adblocker/profile builds and hits) are excluded —
    #: every worker warms its own caches and records keep their memoized
    #: profiles across runs, so those totals legitimately vary with the
    #: worker count and run order.
    WORK_COUNTERS = ("records", "match_calls", "candidates_probed", "html_parses")

    def work_metrics(self) -> Dict[str, int]:
        """The sharding-invariant counters, key-sorted.

        A parallel run's merged ``work_metrics()`` must equal the serial
        run's exactly — this is the metric-level analogue of the
        byte-identical ``CoverageResult`` guarantee.
        """
        return {name: int(getattr(self, name)) for name in sorted(self.WORK_COUNTERS)}

    def render(self) -> str:
        """One-line human-readable summary for the bench harness."""
        return (
            f"{self.records} records in {self.elapsed:.2f}s "
            f"({self.records_per_second():.0f} rec/s); "
            f"{self.probes_per_call():.1f} rules probed/call; "
            f"matchers: {self.matcher_full_builds} full + "
            f"{self.matcher_incremental_builds} incremental builds, "
            f"{100 * self.matcher_hit_rate():.1f}% cache hits; "
            f"profiles: {self.profile_builds} built, {self.profile_hits} reused"
        )


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    Deliberately tiny: ``get``/``put``/``__contains__``/``__len__`` are all
    the replay engine needs. Not thread-safe (each worker process owns its
    own analyzer and caches).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("LRU capacity must be >= 1")
        self.capacity = capacity
        self._data: "OrderedDict" = OrderedDict()

    def get(self, key, default=None):
        """Return the cached value (refreshing recency) or ``default``."""
        if key not in self._data:
            return default
        self._data.move_to_end(key)
        return self._data[key]

    def put(self, key, value) -> None:
        """Insert/refresh ``key``; evict the coldest entry past capacity."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def __contains__(self, key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def values(self) -> list:
        """Snapshot of cached values, coldest to warmest (recency unchanged)."""
        return list(self._data.values())

    def clear(self) -> None:
        """Drop every cached entry."""
        self._data.clear()


#: Default sink for matchers constructed outside an analyzer (micro-benches,
#: the live crawler, the corpus builder). Analyzers pass their own instance.
GLOBAL_COUNTERS = PerfCounters()


def get_counters(stats: Optional[PerfCounters]) -> PerfCounters:
    """The counters a matcher should report into (default: global sink)."""
    return stats if stats is not None else GLOBAL_COUNTERS
