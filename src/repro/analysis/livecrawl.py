"""§4.3 — anti-adblock detection on the live Web.

Crawls the synthetic live web (top ``live_top`` ranks, April 2017) with
the *most recent* versions of the filter lists, mirroring the paper's
Alexa top-100K crawl: count sites triggering HTTP and HTML rules per list,
measure the third-party share of the matches, and extract the matched
anti-adblock scripts for the §5 live classification test.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..filterlist.history import FilterListHistory
from ..obs.metrics import get_metrics
from ..obs.trace import span as trace_span
from ..filterlist.matcher import NetworkMatcher
from ..filterlist.parser import FilterList
from ..filterlist.rules import ElementRule
from ..synthesis.world import SyntheticWorld
from ..web.adblocker import Adblocker
from ..web.dom import parse_html
from ..web.page import PageSnapshot
from ..web.url import is_third_party, resource_type_from_url

logger = logging.getLogger("repro.analysis.livecrawl")


@dataclass
class LiveCrawlResult:
    """§4.3's headline numbers."""

    crawled: int = 0
    reachable: int = 0
    http_matches: Dict[str, int] = field(default_factory=dict)
    html_matches: Dict[str, int] = field(default_factory=dict)
    third_party_matches: Dict[str, int] = field(default_factory=dict)
    #: list name -> matched site domains
    detected_domains: Dict[str, List[str]] = field(default_factory=dict)
    #: unique anti-adblock script sources from detected sites (for §5)
    matched_scripts: List[str] = field(default_factory=list)

    def third_party_share(self, list_name: str) -> float:
        """Fraction of a list's HTTP matches that were third-party requests."""
        matches = self.http_matches.get(list_name, 0)
        if matches == 0:
            return 0.0
        return self.third_party_matches.get(list_name, 0) / matches


class LiveCrawler:
    """Runs the live-web measurement over a synthetic world."""

    def __init__(
        self, world: SyntheticWorld, histories: Dict[str, FilterListHistory]
    ) -> None:
        self.world = world
        self.histories = histories
        self._matchers = {
            name: NetworkMatcher(history.latest().filter_list.network_rules)
            for name, history in histories.items()
            if history.latest() is not None
        }
        self._adblockers = {
            name: self._element_adblocker(history)
            for name, history in histories.items()
            if history.latest() is not None
        }

    @staticmethod
    def _element_adblocker(history: FilterListHistory) -> Adblocker:
        element_only = FilterList(name=history.name)
        element_only.rules = [
            parsed
            for parsed in history.latest().filter_list.rules
            if isinstance(parsed.rule, ElementRule)
        ]
        return Adblocker([element_only])

    # -- per-site matching -------------------------------------------------------

    def _http_match(
        self, name: str, snapshot: PageSnapshot
    ) -> Optional[Tuple[str, bool]]:
        matcher = self._matchers[name]
        page_domain = snapshot.domain
        for resource in snapshot.subresources:
            url = resource.url
            third_party = is_third_party(url, page_domain)
            result = matcher.match(
                url,
                page_domain=page_domain,
                resource_type=resource.resource_type
                or resource_type_from_url(url, default="script"),
                third_party=third_party,
            )
            if result.blocked:
                return url, third_party
        return None

    def _html_match(
        self, name: str, snapshot: PageSnapshot, document=None
    ) -> bool:
        if not snapshot.html:
            return False
        if document is None:
            document = parse_html(snapshot.html)
        triggered = self._adblockers[name].hide_elements(document, snapshot.url)
        return bool(triggered)

    # -- crawl ----------------------------------------------------------------------

    #: Emit an INFO heartbeat every this many sites.
    PROGRESS_EVERY = 2000

    def crawl(self, check_html: bool = True) -> LiveCrawlResult:
        """Visit every live domain and match against the latest list versions."""
        with trace_span("live_crawl", lists=len(self.histories)) as span:
            result = self._crawl(check_html, span)
        metrics = get_metrics()
        metrics.count("live.crawled", result.crawled)
        metrics.count("live.reachable", result.reachable)
        metrics.count("live.matched_scripts", len(result.matched_scripts))
        for name, count in result.http_matches.items():
            metrics.count(f"live.http_matches.{name}", count)
        return result

    def _crawl(self, check_html: bool, span) -> LiveCrawlResult:
        result = LiveCrawlResult()
        for name in self.histories:
            result.http_matches[name] = 0
            result.html_matches[name] = 0
            result.third_party_matches[name] = 0
            result.detected_domains[name] = []
        seen_scripts = set()
        for ranked in self.world.live_domains():
            result.crawled += 1
            if result.crawled % self.PROGRESS_EVERY == 0:
                logger.info(
                    "live crawl progress: %d sites, %d reachable",
                    result.crawled,
                    result.reachable,
                )
            snapshot = self.world.live_snapshot(ranked.rank)
            if snapshot is None:
                continue
            result.reachable += 1
            site_detected = False
            document = (
                parse_html(snapshot.html) if check_html and snapshot.html else None
            )
            for name in self.histories:
                if name not in self._matchers:
                    continue  # history has no revisions yet
                matched = self._http_match(name, snapshot)
                if matched is not None:
                    result.http_matches[name] += 1
                    result.detected_domains[name].append(snapshot.domain)
                    if matched[1]:
                        result.third_party_matches[name] += 1
                    site_detected = True
                if check_html and self._html_match(name, snapshot, document):
                    result.html_matches[name] += 1
            if site_detected:
                for script in snapshot.anti_adblock_scripts():
                    if script.source and script.source not in seen_scripts:
                        seen_scripts.add(script.source)
                        result.matched_scripts.append(script.source)
        span.set(crawled=result.crawled, reachable=result.reachable)
        return result
