"""§4.3 — anti-adblock detection on the live Web.

Crawls the synthetic live web (top ``live_top`` ranks, April 2017) with
the *most recent* versions of the filter lists, mirroring the paper's
Alexa top-100K crawl: count sites triggering HTTP and HTML rules per list,
measure the third-party share of the matches, and extract the matched
anti-adblock scripts for the §5 live classification test.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..filterlist.history import FilterListHistory
from ..obs.metrics import get_metrics
from ..obs.trace import emit_event
from ..obs.trace import span as trace_span
from ..resilience import ResiliencePolicy, default_resilience
from ..resilience.canonical import Interner
from ..filterlist.matcher import NetworkMatcher
from ..filterlist.parser import FilterList
from ..filterlist.rules import ElementRule
from ..synthesis.world import SyntheticWorld
from ..web.adblocker import Adblocker
from ..web.dom import parse_html
from ..web.page import PageSnapshot
from ..web.url import is_third_party, resource_type_from_url

logger = logging.getLogger("repro.analysis.livecrawl")


@dataclass
class LiveCrawlResult:
    """§4.3's headline numbers."""

    crawled: int = 0
    reachable: int = 0
    http_matches: Dict[str, int] = field(default_factory=dict)
    html_matches: Dict[str, int] = field(default_factory=dict)
    third_party_matches: Dict[str, int] = field(default_factory=dict)
    #: list name -> matched site domains
    detected_domains: Dict[str, List[str]] = field(default_factory=dict)
    #: unique anti-adblock script sources from detected sites (for §5)
    matched_scripts: List[str] = field(default_factory=list)

    def third_party_share(self, list_name: str) -> float:
        """Fraction of a list's HTTP matches that were third-party requests."""
        matches = self.http_matches.get(list_name, 0)
        if matches == 0:
            return 0.0
        return self.third_party_matches.get(list_name, 0) / matches


class LiveCrawler:
    """Runs the live-web measurement over a synthetic world."""

    def __init__(
        self, world: SyntheticWorld, histories: Dict[str, FilterListHistory]
    ) -> None:
        self.world = world
        self.histories = histories
        self._matchers = {
            name: NetworkMatcher(history.latest().filter_list.network_rules)
            for name, history in histories.items()
            if history.latest() is not None
        }
        self._adblockers = {
            name: self._element_adblocker(history)
            for name, history in histories.items()
            if history.latest() is not None
        }

    @staticmethod
    def _element_adblocker(history: FilterListHistory) -> Adblocker:
        element_only = FilterList(name=history.name)
        element_only.rules = [
            parsed
            for parsed in history.latest().filter_list.rules
            if isinstance(parsed.rule, ElementRule)
        ]
        return Adblocker([element_only])

    # -- per-site matching -------------------------------------------------------

    def _http_match(
        self, name: str, snapshot: PageSnapshot
    ) -> Optional[Tuple[str, bool]]:
        matcher = self._matchers[name]
        page_domain = snapshot.domain
        for resource in snapshot.subresources:
            url = resource.url
            third_party = is_third_party(url, page_domain)
            result = matcher.match(
                url,
                page_domain=page_domain,
                resource_type=resource.resource_type
                or resource_type_from_url(url, default="script"),
                third_party=third_party,
            )
            if result.blocked:
                return url, third_party
        return None

    def _html_match(
        self, name: str, snapshot: PageSnapshot, document=None
    ) -> bool:
        if not snapshot.html:
            return False
        if document is None:
            document = parse_html(snapshot.html)
        triggered = self._adblockers[name].hide_elements(document, snapshot.url)
        return bool(triggered)

    # -- crawl ----------------------------------------------------------------------

    #: Emit an INFO heartbeat every this many sites.
    PROGRESS_EVERY = 2000

    def crawl(
        self,
        check_html: bool = True,
        resilience: Optional[ResiliencePolicy] = None,
    ) -> LiveCrawlResult:
        """Visit every live domain and match against the latest list versions.

        With ``REPRO_CRAWL_JOURNAL`` set, each visited rank's match
        summary checkpoints to the ``live`` journal and an interrupted
        crawl resumes from it, reproducing the uninterrupted result.
        """
        resilience = resilience or default_resilience()
        journal = resilience.journal("live", self._fingerprint(check_html))
        state = journal.load() if journal is not None else None
        with trace_span("live_crawl", lists=len(self.histories)) as span:
            result = self._crawl(check_html, span, state=state, journal=journal)
        if journal is not None:
            journal.mark_complete()
            journal.close()
            emit_event("journal_complete", scope="live", path=str(journal.path))
        metrics = get_metrics()
        metrics.count("live.crawled", result.crawled)
        metrics.count("live.reachable", result.reachable)
        metrics.count("live.matched_scripts", len(result.matched_scripts))
        for name, count in result.http_matches.items():
            metrics.count(f"live.http_matches.{name}", count)
        return result

    def _fingerprint(self, check_html: bool) -> Dict[str, object]:
        return {
            "lists": sorted(self.histories),
            "check_html": check_html,
            "live_top": self.world.config.live_top,
        }

    def _crawl(
        self, check_html: bool, span, state=None, journal=None
    ) -> LiveCrawlResult:
        result = LiveCrawlResult()
        for name in self.histories:
            result.http_matches[name] = 0
            result.html_matches[name] = 0
            result.third_party_matches[name] = 0
            result.detected_domains[name] = []
        seen_scripts = set()
        resumed = 0
        for ranked in self.world.live_domains():
            result.crawled += 1
            if result.crawled % self.PROGRESS_EVERY == 0:
                logger.info(
                    "live crawl progress: %d sites, %d reachable",
                    result.crawled,
                    result.reachable,
                )
            key = (str(ranked.rank),)
            if state is not None and key in state:
                payload = state.take(key)
                resumed += 1
            else:
                payload = self._visit_site(ranked, check_html)
                if journal is not None:
                    journal.append(key, payload)
            self._accumulate(result, payload, seen_scripts)
        if resumed:
            get_metrics().count("crawl.resumed_slots", resumed)
            emit_event("crawl_resume", scope="live", slots=resumed)
            logger.info("resumed live crawl: %d journaled ranks", resumed)
        # Intern the accumulated strings so a journal-resumed result
        # pickles byte-identically to an uninterrupted one.
        interner = Interner()
        for name, domains in result.detected_domains.items():
            result.detected_domains[name] = [interner.string(d) for d in domains]
        result.matched_scripts = [
            interner.string(s) for s in result.matched_scripts
        ]
        span.set(crawled=result.crawled, reachable=result.reachable)
        return result

    def _visit_site(self, ranked, check_html: bool) -> Optional[Dict]:
        """One rank's full match summary (the journal's unit of work)."""
        snapshot = self.world.live_snapshot(ranked.rank)
        if snapshot is None:
            return None
        payload: Dict = {"domain": snapshot.domain, "lists": {}, "scripts": []}
        site_detected = False
        document = (
            parse_html(snapshot.html) if check_html and snapshot.html else None
        )
        for name in self.histories:
            if name not in self._matchers:
                continue  # history has no revisions yet
            entry: Dict = {}
            matched = self._http_match(name, snapshot)
            if matched is not None:
                entry["http"] = True
                entry["third"] = matched[1]
                site_detected = True
            if check_html and self._html_match(name, snapshot, document):
                entry["html"] = True
            if entry:
                payload["lists"][name] = entry
        if site_detected:
            payload["scripts"] = [
                script.source
                for script in snapshot.anti_adblock_scripts()
                if script.source
            ]
        return payload

    @staticmethod
    def _accumulate(result: LiveCrawlResult, payload: Optional[Dict], seen_scripts) -> None:
        if payload is None:
            return
        result.reachable += 1
        domain = payload["domain"]
        for name, entry in payload["lists"].items():
            if entry.get("http"):
                result.http_matches[name] += 1
                result.detected_domains[name].append(domain)
                if entry.get("third"):
                    result.third_party_matches[name] += 1
            if entry.get("html"):
                result.html_matches[name] += 1
        for source in payload["scripts"]:
            if source not in seen_scripts:
                seen_scripts.add(source)
                result.matched_scripts.append(source)
