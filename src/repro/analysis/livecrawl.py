"""§4.3 — anti-adblock detection on the live Web.

Crawls the synthetic live web (top ``live_top`` ranks, April 2017) with
the *most recent* versions of the filter lists, mirroring the paper's
Alexa top-100K crawl: count sites triggering HTTP and HTML rules per list,
measure the third-party share of the matches, and extract the matched
anti-adblock scripts for the §5 live classification test.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..filterlist.history import FilterListHistory
from ..obs.config import repro_workers
from ..obs.metrics import get_metrics
from ..obs.trace import emit_event
from ..obs.trace import span as trace_span
from ..resilience import ResiliencePolicy, default_resilience
from ..resilience.canonical import Interner
from .pool import get_persistent_pool, map_shards, split_shards
from .rulestats import get_rule_stats
from ..filterlist.matcher import NetworkMatcher
from ..filterlist.parser import FilterList
from ..filterlist.rules import ElementRule
from ..synthesis.world import SyntheticWorld
from ..web.adblocker import Adblocker
from ..web.dom import parse_html
from ..web.page import PageSnapshot
from ..web.url import is_third_party, resource_type_from_url

logger = logging.getLogger("repro.analysis.livecrawl")


@dataclass
class LiveCrawlResult:
    """§4.3's headline numbers."""

    crawled: int = 0
    reachable: int = 0
    http_matches: Dict[str, int] = field(default_factory=dict)
    html_matches: Dict[str, int] = field(default_factory=dict)
    third_party_matches: Dict[str, int] = field(default_factory=dict)
    #: list name -> matched site domains
    detected_domains: Dict[str, List[str]] = field(default_factory=dict)
    #: unique anti-adblock script sources from detected sites (for §5)
    matched_scripts: List[str] = field(default_factory=list)

    def third_party_share(self, list_name: str) -> float:
        """Fraction of a list's HTTP matches that were third-party requests."""
        matches = self.http_matches.get(list_name, 0)
        if matches == 0:
            return 0.0
        return self.third_party_matches.get(list_name, 0) / matches


# -- worker-pool plumbing (module level for pickling) ----------------------------


def _make_wave_crawler(state) -> "LiveCrawler":
    """Fork-per-run worker state: one crawler per worker per wave."""
    world, histories = state
    return LiveCrawler(world, histories)


def _make_persistent_crawler(published) -> "LiveCrawler":
    """Persistent-pool worker state: one crawler per worker, ever."""
    return LiveCrawler(published["world"], published["histories"])


def _live_range_task(crawler: "LiveCrawler", bounds, check_html: bool):
    """Visit one contiguous range of live ranks.

    Returns ``(payloads, rule_stats_delta)``: per-rank match payloads in
    rank order, plus this range's rule-stats delta (``None`` while the
    plane is off) for the parent to merge — workers record into their
    own process-global collector, which dies with them.
    """
    collector = get_rule_stats()
    rule_snapshot = collector.snapshot() if collector is not None else None
    lo, hi = bounds
    ranked = crawler._ranked()
    payloads = [crawler._visit_site(ranked[i], check_html) for i in range(lo, hi)]
    rule_delta = (
        collector.delta_since(rule_snapshot) if collector is not None else None
    )
    return payloads, rule_delta


class LiveCrawler:
    """Runs the live-web measurement over a synthetic world."""

    def __init__(
        self, world: SyntheticWorld, histories: Dict[str, FilterListHistory]
    ) -> None:
        self.world = world
        self.histories = histories
        self._ranked_cache: Optional[List] = None
        self._matchers = {
            name: NetworkMatcher(history.latest().filter_list.network_rules)
            for name, history in histories.items()
            if history.latest() is not None
        }
        self._adblockers = {
            name: self._element_adblocker(history)
            for name, history in histories.items()
            if history.latest() is not None
        }
        collector = get_rule_stats()
        if collector is not None:
            for name, matcher in self._matchers.items():
                matcher.rule_stats = collector.scope(name)
            for name, adblocker in self._adblockers.items():
                adblocker.rule_stats = collector.scope(name)

    @staticmethod
    def _element_adblocker(history: FilterListHistory) -> Adblocker:
        element_only = FilterList(name=history.name)
        element_only.rules = [
            parsed
            for parsed in history.latest().filter_list.rules
            if isinstance(parsed.rule, ElementRule)
        ]
        return Adblocker([element_only])

    # -- per-site matching -------------------------------------------------------

    def _http_match(
        self, name: str, snapshot: PageSnapshot
    ) -> Optional[Tuple[str, bool]]:
        matcher = self._matchers[name]
        page_domain = snapshot.domain
        for resource in snapshot.subresources:
            url = resource.url
            third_party = is_third_party(url, page_domain)
            result = matcher.match(
                url,
                page_domain=page_domain,
                resource_type=resource.resource_type
                or resource_type_from_url(url, default="script"),
                third_party=third_party,
            )
            if result.blocked:
                return url, third_party
        return None

    def _html_match(
        self, name: str, snapshot: PageSnapshot, document=None
    ) -> bool:
        if not snapshot.html:
            return False
        if document is None:
            document = parse_html(snapshot.html)
        triggered = self._adblockers[name].hide_elements(document, snapshot.url)
        return bool(triggered)

    def _ranked(self) -> List:
        """The live rank list, computed once per crawler."""
        if self._ranked_cache is None:
            self._ranked_cache = list(self.world.live_domains())
        return self._ranked_cache

    # -- crawl ----------------------------------------------------------------------

    #: Emit an INFO heartbeat every this many sites.
    PROGRESS_EVERY = 2000

    #: Ranks visited per parallel wave (bounds in-flight payload memory
    #: and sets the progress/fan-out granularity).
    WAVE_SIZE = 512

    def crawl(
        self,
        check_html: bool = True,
        resilience: Optional[ResiliencePolicy] = None,
        workers: Optional[int] = None,
        wave_size: Optional[int] = None,
    ) -> LiveCrawlResult:
        """Visit every live domain and match against the latest list versions.

        With ``REPRO_CRAWL_JOURNAL`` set, each visited rank's match
        summary checkpoints to the ``live`` journal and an interrupted
        crawl resumes from it, reproducing the uninterrupted result.

        ``workers`` (default: ``REPRO_WORKERS``) > 1 visits ranks in
        parallel waves — through the process-wide persistent pool when
        one is live with this crawl's world published, else one fork
        pool per wave. Parallel accumulation replays payloads in rank
        order, so the result is byte-identical to the serial crawl's.
        Journaled crawls stay serial (the journal is an ordered
        per-rank checkpoint stream).
        """
        resilience = resilience or default_resilience()
        journal = resilience.journal("live", self._fingerprint(check_html))
        state = journal.load() if journal is not None else None
        workers = repro_workers() if workers is None else max(int(workers), 1)
        with trace_span("live_crawl", lists=len(self.histories)) as span:
            if workers > 1 and journal is None:
                result = self._crawl_parallel(check_html, span, workers, wave_size)
            else:
                result = self._crawl(check_html, span, state=state, journal=journal)
        if journal is not None:
            journal.mark_complete()
            journal.close()
            emit_event("journal_complete", scope="live", path=str(journal.path))
        metrics = get_metrics()
        metrics.count("live.crawled", result.crawled)
        metrics.count("live.reachable", result.reachable)
        metrics.count("live.matched_scripts", len(result.matched_scripts))
        for name, count in result.http_matches.items():
            metrics.count(f"live.http_matches.{name}", count)
        return result

    def _fingerprint(self, check_html: bool) -> Dict[str, object]:
        return {
            "lists": sorted(self.histories),
            "check_html": check_html,
            "live_top": self.world.config.live_top,
        }

    def _empty_result(self) -> LiveCrawlResult:
        result = LiveCrawlResult()
        for name in self.histories:
            result.http_matches[name] = 0
            result.html_matches[name] = 0
            result.third_party_matches[name] = 0
            result.detected_domains[name] = []
        return result

    @staticmethod
    def _finalize(result: LiveCrawlResult, span) -> LiveCrawlResult:
        # Intern the accumulated strings so every construction path
        # (serial, journal-resumed, parallel waves) pickles
        # byte-identically.
        interner = Interner()
        for name, domains in result.detected_domains.items():
            result.detected_domains[name] = [interner.string(d) for d in domains]
        result.matched_scripts = [
            interner.string(s) for s in result.matched_scripts
        ]
        span.set(crawled=result.crawled, reachable=result.reachable)
        return result

    def _crawl(
        self, check_html: bool, span, state=None, journal=None
    ) -> LiveCrawlResult:
        result = self._empty_result()
        seen_scripts = set()
        resumed = 0
        for ranked in self.world.live_domains():
            result.crawled += 1
            if result.crawled % self.PROGRESS_EVERY == 0:
                logger.info(
                    "live crawl progress: %d sites, %d reachable",
                    result.crawled,
                    result.reachable,
                )
            key = (str(ranked.rank),)
            if state is not None and key in state:
                payload = state.take(key)
                resumed += 1
            else:
                payload = self._visit_site(ranked, check_html)
                if journal is not None:
                    journal.append(key, payload)
            self._accumulate(result, payload, seen_scripts)
        if resumed:
            get_metrics().count("crawl.resumed_slots", resumed)
            emit_event("crawl_resume", scope="live", slots=resumed)
            logger.info("resumed live crawl: %d journaled ranks", resumed)
        return self._finalize(result, span)

    def _crawl_parallel(
        self, check_html: bool, span, workers: int, wave_size: Optional[int]
    ) -> LiveCrawlResult:
        """Visit ranks in parallel waves, accumulating in rank order.

        Each wave fans one contiguous rank range out across ``workers``.
        With a live persistent pool whose published world/histories are
        this crawler's (identity), waves reuse its warm workers — the
        per-worker :class:`LiveCrawler` (matchers, adblockers) is built
        once, ever. Otherwise every wave pays for a fresh fork pool and
        fresh worker crawlers — the ``REPRO_POOL_PERSIST=0`` baseline.
        """
        ranked = self._ranked()
        total = len(ranked)
        wave = max(int(wave_size) if wave_size else self.WAVE_SIZE, 1)
        result = self._empty_result()
        seen_scripts = set()
        collector = get_rule_stats()
        pool = get_persistent_pool()
        use_pool = (
            pool is not None
            and pool.matches("world", self.world)
            and pool.matches("histories", self.histories)
        )
        span.set(workers=workers, waves=-(-total // wave) if total else 0)
        for lo in range(0, total, wave):
            hi = min(lo + wave, total)
            shards = split_shards([[i] for i in range(lo, hi)], workers)
            bounds = []
            at = lo
            for shard in shards:
                bounds.append((at, at + len(shard)))
                at += len(shard)
            outputs = None
            if use_pool:
                outputs = pool.run(
                    _live_range_task,
                    bounds,
                    make=_make_persistent_crawler,
                    extra=(check_html,),
                )
            if outputs is None:
                outputs = map_shards(
                    bounds,
                    _live_range_task,
                    state=(self.world, self.histories),
                    make_worker_state=_make_wave_crawler,
                    extra=(check_html,),
                )
            for payloads, rule_delta in outputs:
                if rule_delta and collector is not None:
                    collector.merge_payload(rule_delta)
                for payload in payloads:
                    result.crawled += 1
                    self._accumulate(result, payload, seen_scripts)
            if hi % self.PROGRESS_EVERY < wave and hi >= self.PROGRESS_EVERY:
                logger.info(
                    "live crawl progress: %d sites, %d reachable",
                    result.crawled,
                    result.reachable,
                )
        return self._finalize(result, span)

    def _visit_site(self, ranked, check_html: bool) -> Optional[Dict]:
        """One rank's full match summary (the journal's unit of work)."""
        snapshot = self.world.live_snapshot(ranked.rank)
        if snapshot is None:
            return None
        payload: Dict = {"domain": snapshot.domain, "lists": {}, "scripts": []}
        site_detected = False
        document = (
            parse_html(snapshot.html) if check_html and snapshot.html else None
        )
        for name in self.histories:
            if name not in self._matchers:
                continue  # history has no revisions yet
            entry: Dict = {}
            matched = self._http_match(name, snapshot)
            if matched is not None:
                entry["http"] = True
                entry["third"] = matched[1]
                site_detected = True
            if check_html and self._html_match(name, snapshot, document):
                entry["html"] = True
            if entry:
                payload["lists"][name] = entry
        if site_detected:
            payload["scripts"] = [
                script.source
                for script in snapshot.anti_adblock_scripts()
                if script.source
            ]
        return payload

    @staticmethod
    def _accumulate(result: LiveCrawlResult, payload: Optional[Dict], seen_scripts) -> None:
        if payload is None:
            return
        result.reachable += 1
        domain = payload["domain"]
        for name, entry in payload["lists"].items():
            if entry.get("http"):
                result.http_matches[name] += 1
                result.detected_domains[name].append(domain)
                if entry.get("third"):
                    result.third_party_matches[name] += 1
            if entry.get("html"):
                result.html_matches[name] += 1
        for source in payload["scripts"]:
            if source not in seen_scripts:
                seen_scripts.add(source)
                result.matched_scripts.append(source)
