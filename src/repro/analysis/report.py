"""Plain-text rendering of tables and series, paper-style.

Every experiment driver and benchmark prints its artifact through these
helpers so the output reads like the paper's tables/figures.
"""

from __future__ import annotations

from datetime import date
from typing import Dict, List, Sequence, Tuple


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """A fixed-width text table."""
    columns = len(headers)
    normalized = [[_cell(value) for value in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in normalized:
        for index in range(min(columns, len(row))):
            widths[index] = max(widths[index], len(row[index]))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in normalized:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) if i < len(row) else "" for i in range(columns))
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def render_series(
    series: Dict[date, int], title: str = "", every: int = 1
) -> str:
    """A month → count series, one line per (sampled) month."""
    lines: List[str] = []
    if title:
        lines.append(title)
    months = sorted(series)
    for index, month in enumerate(months):
        if index % every and index != len(months) - 1:
            continue
        lines.append(f"  {month.isoformat()[:7]}  {series[month]}")
    return "\n".join(lines)


def render_multi_series(
    all_series: Dict[str, Dict[date, int]], title: str = "", every: int = 1
) -> str:
    """Several aligned month series as a table (Figure 6 style)."""
    names = list(all_series)
    months = sorted({month for series in all_series.values() for month in series})
    headers = ["month"] + names
    rows = []
    for index, month in enumerate(months):
        if index % every and index != len(months) - 1:
            continue
        rows.append(
            [month.isoformat()[:7]] + [all_series[name].get(month, 0) for name in names]
        )
    return render_table(headers, rows, title=title)


def render_cdf(
    points: List[Tuple[int, float]], title: str = "", unit: str = "days"
) -> str:
    """A CDF as (x, F(x)) rows (Figures 3 and 7)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for x, fx in points:
        lines.append(f"  {x:>6} {unit}: {fx:6.1%}")
    return "\n".join(lines)


def percent(value: float, digits: int = 1) -> str:
    """Format a 0..1 fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"
