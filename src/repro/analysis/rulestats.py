"""Rule-level hit/cost accounting: the "filter the filters" plane.

The paper measures how anti-adblock lists *evolve*; this module measures
which rules actually *fire* and what the stale ones cost. Every matcher
call reports, per list:

- **hits** — per-rule trigger counts (network rules via
  :class:`~repro.filterlist.matcher.NetworkMatcher`, element rules via
  :class:`~repro.web.adblocker.Adblocker`), keyed by the rule's raw line;
- **checks** — per-rule candidate probes from the token index (the cost
  a rule imposes on the matcher whether or not it ever matches);
- **cost** — a histogram of candidates probed per call (deterministic:
  sharding-invariant, so it merges byte-identically across workers);
- **latency_ns** — a histogram of per-call wall latency (advisory:
  timing is machine- and schedule-dependent, so it is excluded from
  canonical payloads and reports).

The plane follows the ``NULL_SPAN`` discipline: collection is off unless
``REPRO_RULE_STATS=1`` (or a collector is installed programmatically),
and a disabled call site costs one attribute check. Worker processes
accumulate into their own process-global collector and ship plain-dict
*payload deltas* back through the existing shard-telemetry path; the
parent merges them with key-sorted sums, so serial and parallel runs
produce identical canonical payloads. :class:`RuleStatsStore` adds a
content-addressed on-disk accumulator so stats aggregate across
invocations of the full §4 replay at scale.

:func:`build_rule_report` turns an accumulated payload plus the list
histories into the "filter the filters" report: dead-rule fraction over
revisions, top-N hot rules, the cost of never-firing rules, and
cross-list overlap.
"""

from __future__ import annotations

import hashlib
import json
import os
from itertools import combinations
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..obs.config import rule_stats_enabled
from ..obs.hist import Histogram, count_buckets, ns_buckets

#: Version tag embedded in every serialized payload.
PAYLOAD_SCHEMA = "repro.rulestats/1"

#: Version tag embedded in every rendered report.
REPORT_SCHEMA = "repro.rulereport/1"

#: Payload sections that depend on wall-clock timing, excluded from
#: canonical (byte-compared) serializations.
TIMING_KEYS = ("latency_ns",)


class ScopedRuleStats:
    """One list's accounting sink (what a matcher/adblocker writes into)."""

    __slots__ = ("hits", "checks", "calls", "cost", "latency_ns")

    def __init__(self) -> None:
        #: rule raw line -> times it fired (network or element).
        self.hits: Dict[str, int] = {}
        #: rule raw line -> times the token index probed it.
        self.checks: Dict[str, int] = {}
        #: matcher ``_first`` passes recorded.
        self.calls = 0
        self.cost = Histogram(count_buckets())
        self.latency_ns = Histogram(ns_buckets())

    def record_call(self, probed: int, elapsed_ns: int, hit) -> None:
        """One matcher pass: ``probed`` candidates, optional winning rule."""
        self.calls += 1
        self.cost.observe(probed)
        self.latency_ns.observe(elapsed_ns)
        if hit is not None:
            raw = hit.raw
            self.hits[raw] = self.hits.get(raw, 0) + 1

    def record_element_hit(self, raw: str) -> None:
        """One element-hiding rule that fired on a page."""
        self.hits[raw] = self.hits.get(raw, 0) + 1

    # -- serialization ------------------------------------------------------

    def as_payload(self) -> Dict[str, Any]:
        """Plain-dict form (key-sorted rule maps, serialized histograms)."""
        return {
            "calls": self.calls,
            "hits": {raw: self.hits[raw] for raw in sorted(self.hits)},
            "checks": {raw: self.checks[raw] for raw in sorted(self.checks)},
            "cost": self.cost.as_dict(),
            "latency_ns": self.latency_ns.as_dict(),
        }

    def merge_payload(self, payload: Mapping[str, Any]) -> None:
        """Fold a serialized scope (or scope delta) in."""
        self.calls += int(payload.get("calls", 0))
        for raw in sorted(payload.get("hits", ())):
            self.hits[raw] = self.hits.get(raw, 0) + payload["hits"][raw]
        for raw in sorted(payload.get("checks", ())):
            self.checks[raw] = self.checks.get(raw, 0) + payload["checks"][raw]
        if "cost" in payload:
            self.cost.merge(Histogram.from_dict(payload["cost"]))
        if "latency_ns" in payload:
            self.latency_ns.merge(Histogram.from_dict(payload["latency_ns"]))

    def has_data(self) -> bool:
        return bool(self.calls or self.hits or self.checks)


def _scope_delta(
    after: Mapping[str, Any], before: Optional[Mapping[str, Any]]
) -> Optional[Dict[str, Any]]:
    """The serialized difference of two scope payloads (None if empty)."""
    if before is None:
        calls = after["calls"]
        hits = dict(after["hits"])
        checks = dict(after["checks"])
        cost = dict(after["cost"])
        latency = dict(after["latency_ns"])
    else:
        calls = after["calls"] - before["calls"]
        hits = {
            raw: count - before["hits"].get(raw, 0)
            for raw, count in after["hits"].items()
            if count != before["hits"].get(raw, 0)
        }
        checks = {
            raw: count - before["checks"].get(raw, 0)
            for raw, count in after["checks"].items()
            if count != before["checks"].get(raw, 0)
        }
        cost = (
            Histogram.from_dict(after["cost"])
            .subtract(Histogram.from_dict(before["cost"]))
            .as_dict()
        )
        latency = (
            Histogram.from_dict(after["latency_ns"])
            .subtract(Histogram.from_dict(before["latency_ns"]))
            .as_dict()
        )
    if not (calls or hits or checks):
        return None
    return {
        "calls": calls,
        "hits": hits,
        "checks": checks,
        "cost": cost,
        "latency_ns": latency,
    }


class RuleStatsCollector:
    """Process-global accumulator of per-list :class:`ScopedRuleStats`."""

    def __init__(self) -> None:
        self._scopes: Dict[str, ScopedRuleStats] = {}

    def scope(self, list_name: str) -> ScopedRuleStats:
        """The (single, shared) sink for one list's rules."""
        scope = self._scopes.get(list_name)
        if scope is None:
            scope = self._scopes[list_name] = ScopedRuleStats()
        return scope

    def has_data(self) -> bool:
        return any(scope.has_data() for scope in self._scopes.values())

    def reset(self) -> None:
        self._scopes.clear()

    # -- payloads (the cross-process / on-disk interchange form) -----------

    def as_payload(self) -> Dict[str, Any]:
        """Serialized collector state: key-sorted, JSON-ready, mergeable."""
        return {
            "schema": PAYLOAD_SCHEMA,
            "lists": {
                name: self._scopes[name].as_payload()
                for name in sorted(self._scopes)
                if self._scopes[name].has_data()
            },
        }

    def canonical_payload(self) -> Dict[str, Any]:
        """The payload minus timing sections — the byte-comparable form."""
        return strip_timing(self.as_payload())

    def snapshot(self) -> Dict[str, Any]:
        """A point-in-time payload for :meth:`delta_since`."""
        return self.as_payload()

    def delta_since(self, snapshot: Mapping[str, Any]) -> Dict[str, Any]:
        """Work since ``snapshot``, as a payload (worker shard reports)."""
        before_lists = snapshot.get("lists", {})
        lists: Dict[str, Any] = {}
        for name, scope in sorted(self._scopes.items()):
            delta = _scope_delta(scope.as_payload(), before_lists.get(name))
            if delta is not None:
                lists[name] = delta
        return {"schema": PAYLOAD_SCHEMA, "lists": lists}

    def merge_payload(self, payload: Mapping[str, Any]) -> None:
        """Fold a payload (a shard delta, a stored accumulator) in."""
        for name in sorted(payload.get("lists", ())):
            self.scope(name).merge_payload(payload["lists"][name])

    # -- summaries ----------------------------------------------------------

    def manifest_summary(self) -> Dict[str, Any]:
        """The ``rules`` section of a v2 run manifest."""
        totals = {"calls": 0, "hits": 0, "checks": 0, "rules_hit": 0}
        lists: Dict[str, Any] = {}
        for name in sorted(self._scopes):
            scope = self._scopes[name]
            if not scope.has_data():
                continue
            entry = {
                "calls": scope.calls,
                "hits": sum(scope.hits.values()),
                "checks": sum(scope.checks.values()),
                "rules_hit": len(scope.hits),
                "rules_checked": len(scope.checks),
            }
            lists[name] = entry
            totals["calls"] += entry["calls"]
            totals["hits"] += entry["hits"]
            totals["checks"] += entry["checks"]
            totals["rules_hit"] += entry["rules_hit"]
        return {"totals": totals, "lists": lists}

    def absorb_into(self, metrics) -> None:
        """Publish totals + histograms into a ``MetricsRegistry``.

        Counters land under ``rules.*``; per-list cost and latency
        histograms under ``rules.cost.<list>`` / ``rules.latency_ns.<list>``.
        """
        summary = self.manifest_summary()
        metrics.absorb("rules", summary["totals"])
        for name in sorted(self._scopes):
            scope = self._scopes[name]
            if not scope.has_data():
                continue
            metrics.absorb_histogram(f"rules.cost.{name}", scope.cost)
            metrics.absorb_histogram(f"rules.latency_ns.{name}", scope.latency_ns)


def strip_timing(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """A copy of a payload without its timing-dependent sections."""
    lists = {}
    for name, entry in payload.get("lists", {}).items():
        lists[name] = {
            key: value for key, value in entry.items() if key not in TIMING_KEYS
        }
    stripped = {key: value for key, value in payload.items() if key != "lists"}
    stripped["lists"] = lists
    return stripped


# -- the process-global collector -------------------------------------------------

_COLLECTOR: Optional[RuleStatsCollector] = None
_RESOLVED = False


def get_rule_stats() -> Optional[RuleStatsCollector]:
    """The process-global collector, or ``None`` while the plane is off.

    Resolved from ``REPRO_RULE_STATS`` on first call; forked workers
    inherit the resolution (and the collector), so every process of a
    sharded run agrees on whether stats are being taken.
    """
    global _COLLECTOR, _RESOLVED
    if not _RESOLVED:
        _RESOLVED = True
        if rule_stats_enabled():
            _COLLECTOR = RuleStatsCollector()
    return _COLLECTOR


def set_rule_stats(
    collector: Optional[RuleStatsCollector],
) -> Optional[RuleStatsCollector]:
    """Install (or clear, with ``None``) the global collector; returns the
    previous one. The programmatic enable path for tests and the
    ``rulereport`` driver — overrides the environment resolution."""
    global _COLLECTOR, _RESOLVED
    previous = _COLLECTOR
    _COLLECTOR = collector
    _RESOLVED = True
    return previous


# -- on-disk accumulation ---------------------------------------------------------


class RuleStatsStore:
    """Content-addressed rule-stats accumulator (one JSON file per key).

    The key — seed, scale, list names — is hashed into the filename, so
    runs of the same campaign fold into one accumulator while different
    campaigns never collide. Writes are read-merge-replace through a
    temp file, so a crashed run leaves the previous accumulator intact.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)

    @staticmethod
    def key_digest(key: Mapping[str, Any]) -> str:
        canonical = json.dumps(key, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def path_for(self, key: Mapping[str, Any]) -> Path:
        return self.root / f"rulestats-{self.key_digest(key)}.json"

    def load(self, key: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
        """The accumulated payload for one key, or ``None``."""
        path = self.path_for(key)
        if not path.exists():
            return None
        return json.loads(path.read_text())["payload"]

    def merge_into(
        self, key: Mapping[str, Any], payload: Mapping[str, Any]
    ) -> Path:
        """Fold a run's payload into the key's accumulator; returns its path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        merged = RuleStatsCollector()
        existing = self.load(key)
        if existing is not None:
            merged.merge_payload(existing)
        merged.merge_payload(payload)
        document = {"key": dict(key), "payload": merged.as_payload()}
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(document, sort_keys=True, indent=2) + "\n")
        os.replace(tmp, path)
        return path

    def load_merged(self) -> Dict[str, Any]:
        """Every stored accumulator merged into one payload (sorted order)."""
        merged = RuleStatsCollector()
        if self.root.is_dir():
            for path in sorted(self.root.glob("rulestats-*.json")):
                merged.merge_payload(json.loads(path.read_text())["payload"])
        return merged.as_payload()


# -- the "filter the filters" report ----------------------------------------------


def _rule_universe(history) -> List[Tuple[str, List[str]]]:
    """Per-revision raw rule lines: [(iso date, [raw, ...]), ...]."""
    series = []
    for revision in history.revisions:
        series.append((revision.date.isoformat(), list(revision.rule_lines())))
    return series


def _top(counts: Mapping[str, int], n: int, key_name: str) -> List[Dict[str, Any]]:
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))[:n]
    return [{"rule": raw, key_name: count} for raw, count in ranked]


def build_rule_report(
    payload: Mapping[str, Any],
    histories: Mapping[str, Any],
    top_n: int = 10,
) -> "RuleReport":
    """Join accumulated stats with list histories into a report object.

    ``histories`` maps list names (the payload's scope names) to
    :class:`~repro.filterlist.history.FilterListHistory`-shaped objects;
    lists without a matching history still report hit/cost totals, just
    no revision series or overlap entries.
    """
    lists: Dict[str, Any] = {}
    timing: Dict[str, Any] = {}
    latest_raws: Dict[str, frozenset] = {}
    hit_sets: Dict[str, frozenset] = {}
    for name in sorted(payload.get("lists", ())):
        entry = payload["lists"][name]
        hits: Mapping[str, int] = entry.get("hits", {})
        checks: Mapping[str, int] = entry.get("checks", {})
        hit_set = frozenset(hits)
        hit_sets[name] = hit_set
        cost = Histogram.from_dict(entry["cost"]) if "cost" in entry else None
        report_entry: Dict[str, Any] = {
            "calls": entry.get("calls", 0),
            "hits_total": sum(hits.values()),
            "checks_total": sum(checks.values()),
            "rules_hit": len(hit_set),
            "top_hot": _top(hits, top_n, "hits"),
            "top_cost": _top(checks, top_n, "checks"),
        }
        if cost is not None:
            report_entry["cost_quantiles"] = cost.quantiles()
            report_entry["cost"] = cost.as_dict()
        history = histories.get(name)
        if history is not None and history.revisions:
            universe = _rule_universe(history)
            series = []
            for iso_date, raws in universe:
                raw_set = set(raws)
                dead = len(raw_set - hit_set)
                series.append(
                    {
                        "date": iso_date,
                        "rules": len(raw_set),
                        "dead": dead,
                        "fraction": round(dead / len(raw_set), 6) if raw_set else 0.0,
                    }
                )
            latest_set = frozenset(universe[-1][1])
            latest_raws[name] = latest_set
            dead_rules = latest_set - hit_set
            dead_checks = {
                raw: checks[raw] for raw in dead_rules if checks.get(raw, 0)
            }
            dead_checks_total = sum(dead_checks.values())
            checks_total = report_entry["checks_total"]
            report_entry.update(
                {
                    "rules_total": len(latest_set),
                    "dead_rules": len(dead_rules),
                    "dead_fraction": (
                        round(len(dead_rules) / len(latest_set), 6)
                        if latest_set
                        else 0.0
                    ),
                    "dead_rule_series": series,
                    "top_dead_cost": _top(dead_checks, top_n, "checks"),
                    "dead_checks_total": dead_checks_total,
                    "dead_cost_share": (
                        round(dead_checks_total / checks_total, 6)
                        if checks_total
                        else 0.0
                    ),
                }
            )
        lists[name] = report_entry
        if "latency_ns" in entry:
            latency = Histogram.from_dict(entry["latency_ns"])
            timing[name] = {
                "latency_quantiles_ns": latency.quantiles(),
                "mean_ns": round(latency.mean() or 0.0, 1),
                "latency_ns": latency.as_dict(),
            }
    overlap = []
    for a, b in combinations(sorted(latest_raws), 2):
        shared = latest_raws[a] & latest_raws[b]
        union = latest_raws[a] | latest_raws[b]
        overlap.append(
            {
                "lists": [a, b],
                "rules_shared": len(shared),
                "rules_jaccard": round(len(shared) / len(union), 6) if union else 0.0,
                "hit_rules_shared": len(hit_sets[a] & hit_sets[b]),
            }
        )
    return RuleReport({"schema": REPORT_SCHEMA, "lists": lists, "overlap": overlap}, timing)


class RuleReport:
    """The rendered forms of one "filter the filters" analysis."""

    def __init__(self, data: Dict[str, Any], timing: Dict[str, Any]) -> None:
        #: Deterministic sections only (sharding- and machine-invariant).
        self.data = data
        #: Wall-clock latency sections (advisory; never byte-compared).
        self.timing = timing

    def canonical_dict(self) -> Dict[str, Any]:
        """The byte-comparable report: deterministic sections only."""
        return self.data

    def as_dict(self) -> Dict[str, Any]:
        """Everything, timing included (for interactive inspection)."""
        merged = dict(self.data)
        if self.timing:
            merged["timing"] = self.timing
        return merged

    def to_json(self, include_timing: bool = False) -> str:
        """Key-sorted JSON; canonical (and byte-stable) without timing."""
        data = self.as_dict() if include_timing else self.canonical_dict()
        return json.dumps(data, sort_keys=True, indent=2)

    def render(self) -> str:
        """The human-readable report (deterministic text + canonical JSON)."""
        lines = ['"Filter the filters": rule-level hit/cost report']
        for name, entry in self.data["lists"].items():
            lines.append("")
            lines.append(f"== {name} ==")
            lines.append(
                f"  matcher calls: {entry['calls']}   rule hits: "
                f"{entry['hits_total']}   candidate checks: {entry['checks_total']}"
            )
            if "rules_total" in entry:
                lines.append(
                    f"  latest revision: {entry['rules_total']} rules, "
                    f"{entry['rules_hit']} ever hit, {entry['dead_rules']} dead "
                    f"({100 * entry['dead_fraction']:.1f}%)"
                )
                lines.append(
                    f"  checks spent on dead rules: {entry['dead_checks_total']} "
                    f"({100 * entry['dead_cost_share']:.1f}% of all checks)"
                )
            if "cost_quantiles" in entry:
                q = entry["cost_quantiles"]
                lines.append(
                    f"  candidates probed per call: p50<={q['p50']} "
                    f"p90<={q['p90']} p99<={q['p99']}"
                )
            series = entry.get("dead_rule_series")
            if series:
                lines.append("  dead-rule fraction over revisions:")
                shown = series if len(series) <= 12 else (
                    series[:6] + [None] + series[-5:]
                )
                for point in shown:
                    if point is None:
                        lines.append("    ...")
                        continue
                    lines.append(
                        f"    {point['date']}  rules={point['rules']:<6} "
                        f"dead={point['dead']:<6} ({100 * point['fraction']:.1f}%)"
                    )
            if entry.get("top_hot"):
                lines.append(f"  top {len(entry['top_hot'])} hot rules:")
                for item in entry["top_hot"]:
                    lines.append(f"    {item['hits']:>8}  {item['rule']}")
            if entry.get("top_dead_cost"):
                lines.append(
                    f"  top {len(entry['top_dead_cost'])} costly dead rules "
                    "(probed, never hit):"
                )
                for item in entry["top_dead_cost"]:
                    lines.append(f"    {item['checks']:>8}  {item['rule']}")
        if self.data["overlap"]:
            lines.append("")
            lines.append("== cross-list overlap ==")
            for pair in self.data["overlap"]:
                a, b = pair["lists"]
                lines.append(
                    f"  {a} ∩ {b}: {pair['rules_shared']} shared rules "
                    f"(jaccard {pair['rules_jaccard']:.3f}), "
                    f"{pair['hit_rules_shared']} shared hit rules"
                )
        lines.append("")
        lines.append("== canonical JSON ==")
        lines.append(self.to_json())
        return "\n".join(lines)
