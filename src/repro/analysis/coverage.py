"""§4 — retrospective filter-list coverage over the archived crawl.

Implements the paper's matching pipeline: per crawled month, truncate the
Wayback prefixes from each site's HAR request URLs and evaluate the
*contemporaneous* revision of each filter list (HTTP request rules); open
the stored HTML in the simulated browser with the adblocker subscribed to
the same revision (HTML element rules). Produces Figure 6(a)/(b) series,
Figure 5's exclusion accounting, and Figure 7's rule-addition-delay CDF.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Dict, List, Optional, Tuple

from ..filterlist.history import FilterListHistory, Revision
from ..filterlist.matcher import NetworkMatcher
from ..filterlist.parser import FilterList
from ..filterlist.rules import ElementRule
from ..wayback.crawler import CrawlRecord, CrawlResult
from ..wayback.rewrite import truncate_wayback
from ..web.adblocker import Adblocker
from ..web.dom import parse_html
from ..web.url import is_third_party, resource_type_from_url


@dataclass
class CoverageResult:
    """Everything §4.2 reports for one crawl × a set of list histories."""

    #: list name -> month -> number of sites triggering HTTP rules
    http_series: Dict[str, Dict[date, int]] = field(default_factory=dict)
    #: list name -> month -> number of sites triggering HTML rules
    html_series: Dict[str, Dict[date, int]] = field(default_factory=dict)
    #: list name -> domain -> first month it was detected (HTTP or HTML)
    first_detected: Dict[str, Dict[str, date]] = field(default_factory=dict)
    #: domain -> first month anti-adblock requests were observed at all
    site_first_seen: Dict[str, date] = field(default_factory=dict)
    #: list name -> domain -> fraction/flag: detected via third-party URL
    third_party_detection: Dict[str, Dict[str, bool]] = field(default_factory=dict)

    def third_party_share(self, list_name: str) -> float:
        """Share of a list's detected sites whose match was third-party."""
        flags = self.third_party_detection.get(list_name, {})
        if not flags:
            return 0.0
        return sum(1 for v in flags.values() if v) / len(flags)


class CoverageAnalyzer:
    """Replays contemporaneous filter-list versions over a crawl."""

    def __init__(self, histories: Dict[str, FilterListHistory]) -> None:
        self.histories = histories
        self._matcher_cache: Dict[Tuple[str, date], NetworkMatcher] = {}
        self._adblocker_cache: Dict[Tuple[str, date], Adblocker] = {}

    # -- caches -------------------------------------------------------------

    def _revision(self, list_name: str, month: date) -> Optional[Revision]:
        return self.histories[list_name].version_at(month)

    def _matcher(self, list_name: str, revision: Revision) -> NetworkMatcher:
        key = (list_name, revision.date)
        if key not in self._matcher_cache:
            self._matcher_cache[key] = NetworkMatcher(revision.filter_list.network_rules)
        return self._matcher_cache[key]

    def _adblocker(self, list_name: str, revision: Revision) -> Adblocker:
        key = (list_name, revision.date)
        if key not in self._adblocker_cache:
            element_only = FilterList(name=list_name)
            element_only.rules = [
                parsed
                for parsed in revision.filter_list.rules
                if isinstance(parsed.rule, ElementRule)
            ]
            self._adblocker_cache[key] = Adblocker([element_only])
        return self._adblocker_cache[key]

    # -- matching one record ----------------------------------------------------

    @staticmethod
    def record_urls(record: CrawlRecord) -> List[str]:
        """Original request URLs of a crawl record (archive prefix stripped)."""
        if record.har is None:
            return []
        return [truncate_wayback(url) for url in record.har.request_urls()]

    def http_match(
        self, list_name: str, record: CrawlRecord
    ) -> Optional[Tuple[str, bool]]:
        """First URL of the record blocked by the contemporaneous list.

        Returns ``(matched_url, is_third_party)`` or ``None``. A website is
        anti-adblocking for a list when any of its request URLs is blocked
        by the list's HTTP rules (§4.2).
        """
        revision = self._revision(list_name, record.month)
        if revision is None:
            return None
        matcher = self._matcher(list_name, revision)
        page_domain = record.domain
        for url in self.record_urls(record):
            third_party = is_third_party(url, page_domain)
            result = matcher.match(
                url,
                page_domain=page_domain,
                resource_type=resource_type_from_url(url, default="script"),
                third_party=third_party,
            )
            if result.blocked:
                return url, third_party
        return None

    def html_match(
        self, list_name: str, record: CrawlRecord, document=None
    ) -> bool:
        """Whether the stored page triggers the list's HTML element rules.

        ``document`` lets callers share one parsed DOM across lists (the
        hiding flags it accumulates do not affect trigger detection).
        """
        revision = self._revision(list_name, record.month)
        if revision is None or not record.html:
            return False
        adblocker = self._adblocker(list_name, revision)
        if document is None:
            document = parse_html(record.html)
        triggered = adblocker.hide_elements(document, f"http://{record.domain}/")
        return bool(triggered)

    # -- full analysis --------------------------------------------------------------

    def analyze(self, crawl: CrawlResult, html_rules: bool = True) -> CoverageResult:
        """Run the §4.2 pipeline over every usable crawl record."""
        result = CoverageResult()
        final_matchers = {
            name: NetworkMatcher(history.latest().filter_list.network_rules)
            for name, history in self.histories.items()
            if history.latest() is not None
        }
        for name in self.histories:
            result.http_series[name] = {}
            result.html_series[name] = {}
            result.first_detected[name] = {}
            result.third_party_detection[name] = {}

        for record in crawl.records:
            if not record.usable:
                continue
            urls = self.record_urls(record)
            # Anti-adblock *presence* proxy: any request matching any rule
            # (either polarity) of any final list version — used for
            # Figure 7's "anti-adblocker added to the website" dates.
            if record.domain not in result.site_first_seen:
                for name, matcher in final_matchers.items():
                    if self._any_match(matcher, record.domain, urls):
                        result.site_first_seen.setdefault(record.domain, record.month)
                        break
            document = (
                parse_html(record.html) if html_rules and record.html else None
            )
            for name in self.histories:
                matched = self.http_match(name, record)
                html_hit = html_rules and self.html_match(name, record, document)
                if matched is not None:
                    result.http_series[name][record.month] = (
                        result.http_series[name].get(record.month, 0) + 1
                    )
                if html_hit:
                    result.html_series[name][record.month] = (
                        result.html_series[name].get(record.month, 0) + 1
                    )
                if matched is not None or html_hit:
                    result.first_detected[name].setdefault(record.domain, record.month)
                    if matched is not None:
                        result.third_party_detection[name].setdefault(
                            record.domain, matched[1]
                        )
        # Months with zero matches still need series entries.
        months = sorted({record.month for record in crawl.records})
        for name in self.histories:
            for month in months:
                result.http_series[name].setdefault(month, 0)
                result.html_series[name].setdefault(month, 0)
        return result

    @staticmethod
    def _any_blocked(matcher: NetworkMatcher, page_domain: str, urls: List[str]) -> bool:
        for url in urls:
            if matcher.match(
                url,
                page_domain=page_domain,
                resource_type=resource_type_from_url(url, default="script"),
                third_party=is_third_party(url, page_domain),
            ).blocked:
                return True
        return False

    @staticmethod
    def _any_match(matcher: NetworkMatcher, page_domain: str, urls: List[str]) -> bool:
        """Any-polarity matching: blocking *or* exception rules count.

        Figure 7 asks when a list first *defined a rule for* an
        anti-adblocker; an exception rule whitelisting the site's bait (the
        numerama pattern) is such a rule even though it never blocks.
        """
        for url in urls:
            if matcher.first_match(
                url,
                page_domain=page_domain,
                resource_type=resource_type_from_url(url, default="script"),
                third_party=is_third_party(url, page_domain),
            ) is not None:
                return True
        return False

    # -- Figure 7 ------------------------------------------------------------------

    def detection_delays(
        self, crawl: CrawlResult, coverage: Optional[CoverageResult] = None
    ) -> Dict[str, List[int]]:
        """Days between a site's anti-adblock appearance and each list's
        earliest matching revision (negative = rule predated the site).
        """
        if coverage is None:
            coverage = self.analyze(crawl, html_rules=False)
        # The final request set per domain (union over usable months).
        urls_by_domain: Dict[str, List[str]] = {}
        for record in crawl.records:
            if record.usable:
                urls = self.record_urls(record)
                urls_by_domain.setdefault(record.domain, [])
                known = set(urls_by_domain[record.domain])
                urls_by_domain[record.domain].extend(
                    url for url in urls if url not in known
                )
        delays: Dict[str, List[int]] = {}
        for name, history in self.histories.items():
            delays[name] = []
            latest = history.latest()
            if latest is None:
                continue
            final_matcher = self._matcher(name, latest)
            for domain, first_seen in coverage.site_first_seen.items():
                urls = urls_by_domain.get(domain, [])
                if not self._any_match(final_matcher, domain, urls):
                    continue
                rule_date = self._earliest_matching_revision(
                    name, history, domain, urls
                )
                if rule_date is not None:
                    delays[name].append((rule_date - first_seen).days)
        return delays

    def _earliest_matching_revision(
        self,
        list_name: str,
        history: FilterListHistory,
        domain: str,
        urls: List[str],
    ) -> Optional[date]:
        """Binary-search the revision history for the first matching version."""
        revisions = history.revisions
        low, high = 0, len(revisions) - 1
        if high < 0:
            return None
        if not self._revision_matches(list_name, revisions[high], domain, urls):
            return None
        earliest: Optional[date] = None
        while low <= high:
            mid = (low + high) // 2
            if self._revision_matches(list_name, revisions[mid], domain, urls):
                earliest = revisions[mid].date
                high = mid - 1
            else:
                low = mid + 1
        return earliest

    def _revision_matches(
        self, list_name: str, revision: Revision, domain: str, urls: List[str]
    ) -> bool:
        matcher = self._matcher(list_name, revision)
        return self._any_match(matcher, domain, urls)


def missing_snapshot_series(crawl: CrawlResult) -> Dict[date, Dict[str, int]]:
    """Figure 5: per-month partial / not-archived / outdated counts."""
    return crawl.missing_counts_by_month()
