"""§4 — retrospective filter-list coverage over the archived crawl.

Implements the paper's matching pipeline: per crawled month, truncate the
Wayback prefixes from each site's HAR request URLs and evaluate the
*contemporaneous* revision of each filter list (HTTP request rules); open
the stored HTML in the simulated browser with the adblocker subscribed to
the same revision (HTML element rules). Produces Figure 6(a)/(b) series,
Figure 5's exclusion accounting, and Figure 7's rule-addition-delay CDF.

The replay is engineered as a parallel, memoized engine:

- every record's matcher inputs (truncated URLs, index tokens, resource
  types, third-party flags) are precomputed once into a
  :class:`~repro.analysis.profile.RequestProfile` and reused across the
  block/allow passes, lists, and revisions;
- revision matchers are derived incrementally from their predecessor via
  the rule delta (consecutive revisions share almost all rules) and held
  in bounded LRU caches so paper scale runs in fixed memory;
- ``REPRO_WORKERS`` (or the ``workers`` argument) shards the record loop
  and the Figure 7 final-matcher scan across a ``ProcessPoolExecutor``
  along domain boundaries, with a deterministic merge that reproduces the
  serial result exactly. The default is serial, so results stay
  bit-identical by default.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from datetime import date
from html import unescape
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..filterlist.history import FilterListHistory, Revision
from ..obs.trace import span as trace_span
from ..filterlist.matcher import NetworkMatcher
from ..filterlist.parser import FilterList
from ..filterlist.rules import ElementRule
from ..filterlist.selectors import SelectorParseError, parse_selector_group
from ..wayback.crawler import CrawlRecord, CrawlResult
from ..web.adblocker import Adblocker
from ..web.dom import parse_html
from .perf import LRUCache, PerfCounters, matcher_cache_size, repro_workers
from .pool import fork_context, get_persistent_pool, map_shards, split_shards
from .profile import RequestProfile, UrlProfile, profile_record
from .rulestats import get_rule_stats


@dataclass
class CoverageResult:
    """Everything §4.2 reports for one crawl × a set of list histories."""

    #: list name -> month -> number of sites triggering HTTP rules
    http_series: Dict[str, Dict[date, int]] = field(default_factory=dict)
    #: list name -> month -> number of sites triggering HTML rules
    html_series: Dict[str, Dict[date, int]] = field(default_factory=dict)
    #: list name -> domain -> first month it was detected (HTTP or HTML)
    first_detected: Dict[str, Dict[str, date]] = field(default_factory=dict)
    #: domain -> first month anti-adblock requests were observed at all
    site_first_seen: Dict[str, date] = field(default_factory=dict)
    #: list name -> domain -> fraction/flag: detected via third-party URL
    third_party_detection: Dict[str, Dict[str, bool]] = field(default_factory=dict)

    def third_party_share(self, list_name: str) -> float:
        """Share of a list's detected sites whose match was third-party."""
        flags = self.third_party_detection.get(list_name, {})
        if not flags:
            return 0.0
        return sum(1 for v in flags.values() if v) / len(flags)


# -- worker-process plumbing ---------------------------------------------------
#
# The fork-first pool, contiguous sharding, and worker-state seeding live
# in ``analysis.pool`` (shared with the §5 feature-extraction engine).
# Each worker builds one CoverageAnalyzer over the histories, then runs
# shard tasks against it.


def _make_worker_analyzer(histories: Dict[str, FilterListHistory]) -> "CoverageAnalyzer":
    return CoverageAnalyzer(histories)


def _shard_telemetry(analyzer: "CoverageAnalyzer", fn):
    """Run a shard body, returning (result, perf delta, span payload).

    The payload is a flat dict the parent grafts onto its span tree as a
    pre-closed child (worker processes cannot share the parent's tracer),
    so sharded runs keep per-worker wall/CPU attribution.
    """
    wall0, cpu0 = time.perf_counter(), time.process_time()
    before = analyzer.perf.snapshot()
    collector = get_rule_stats()
    rule_snapshot = collector.snapshot() if collector is not None else None
    partial = fn()
    delta = analyzer.perf.since(before)
    payload = {
        "wall_s": time.perf_counter() - wall0,
        "cpu_s": time.process_time() - cpu0,
        "records": delta.records,
        "match_calls": delta.match_calls,
    }
    if collector is not None:
        rule_delta = collector.delta_since(rule_snapshot)
        if rule_delta["lists"]:
            payload["rule_stats"] = rule_delta
    return partial, delta, payload


def _absorb_shard_rule_stats(payload: dict) -> None:
    """Merge a shard payload's rule-stats delta into the parent collector.

    Workers accumulate into their own process-global collector and ship
    the delta inside the telemetry payload; popping it here keeps the
    span tree free of bulk data while the parent's collector converges
    to exactly the serial run's state (sums commute).
    """
    rule_delta = payload.pop("rule_stats", None)
    if rule_delta:
        collector = get_rule_stats()
        if collector is not None:
            collector.merge_payload(rule_delta)


def _analyze_shard(analyzer, records: List[CrawlRecord], html_rules: bool):
    return _shard_telemetry(
        analyzer, lambda: analyzer._analyze_records(records, html_rules)
    )


def _make_replay_state(published):
    """Persistent-pool worker state: one analyzer + the published records.

    Built once per worker and kept warm, so matcher/adblocker caches and
    the element screen survive across fan-outs — the state reuse the
    fork-per-run pool cannot have.
    """
    return (CoverageAnalyzer(published["histories"]), published["crawl"].records)


def _analyze_range_shard(state, bounds, html_rules: bool):
    """Persistent-pool task: replay one (lo, hi) range of the records."""
    analyzer, records = state
    lo, hi = bounds
    return _shard_telemetry(
        analyzer, lambda: analyzer._analyze_records(records[lo:hi], html_rules)
    )


def _delays_shard(analyzer, items):
    return _shard_telemetry(analyzer, lambda: analyzer._delays_for_items(items))


class _ElementRuleScreen:
    """Conservative substring pre-filter for HTML element rules.

    Parsing a record's HTML dominates the replay's serial cost, yet most
    archived pages cannot trigger *any* element rule of any revision. A
    selector chain can only match a document whose raw markup contains one
    of the chain's literals (an id, class, or attribute value), so one
    combined regex over the page source decides whether parsing can be
    skipped. The screen errs on the side of parsing: chains without a
    clean ``[\\w-]`` literal force parsing for every record, and pages
    containing ``&`` are re-screened against their entity-unescaped form.
    """

    def __init__(self, histories: Dict[str, FilterListHistory]) -> None:
        literals: Set[str] = set()
        self.parse_all = False
        seen: Set[str] = set()
        for history in histories.values():
            for revision in history:
                for rule in revision.filter_list.element_rules:
                    if rule.is_exception or rule.selector in seen:
                        continue
                    seen.add(rule.selector)
                    try:
                        group = parse_selector_group(rule.selector)
                    except SelectorParseError:
                        continue  # the adblocker skips unparsable selectors
                    for chain in group:
                        literal = self._chain_literal(chain)
                        if literal is None:
                            self.parse_all = True
                        else:
                            literals.add(literal)
        self._regex = (
            re.compile("|".join(re.escape(lit) for lit in sorted(literals)))
            if literals
            else None
        )

    _CLEAN_LITERAL = re.compile(r"[\w-]+\Z")

    @classmethod
    def _chain_literal(cls, chain) -> Optional[str]:
        """One literal the chain's match requires in the markup, if any."""
        for part in reversed(chain.parts):
            candidates = []
            if part.id:
                candidates.append(part.id)
            candidates.extend(part.classes)
            for _, op, value in part.attributes:
                if value and op in ("=", "^=", "$=", "*=", "~="):
                    candidates.append(value)
            for candidate in candidates:
                if cls._CLEAN_LITERAL.match(candidate):
                    return candidate
        return None

    def may_trigger(self, html: str) -> bool:
        """Whether any element rule could possibly fire on this markup."""
        if self.parse_all:
            return True
        if self._regex is None:
            return False
        if self._regex.search(html) is not None:
            return True
        if "&" in html:
            return self._regex.search(unescape(html)) is not None
        return False


class CoverageAnalyzer:
    """Replays contemporaneous filter-list versions over a crawl."""

    def __init__(self, histories: Dict[str, FilterListHistory]) -> None:
        self.histories = histories
        #: perf counters for every replay this analyzer runs (merged
        #: across worker shards when the run is parallel).
        self.perf = PerfCounters()
        capacity = matcher_cache_size()
        self._matcher_cache: LRUCache = LRUCache(capacity)
        self._adblocker_cache: LRUCache = LRUCache(capacity)
        self._element_screen: Optional[_ElementRuleScreen] = None

    # -- caches -------------------------------------------------------------

    def _revision(self, list_name: str, month: date) -> Optional[Revision]:
        return self.histories[list_name].version_at(month)

    def _matcher(self, list_name: str, revision: Revision) -> NetworkMatcher:
        """The revision's matcher: cached, else derived from its
        predecessor's matcher by the rule delta, else built from scratch."""
        key = (list_name, revision.date)
        cached = self._matcher_cache.get(key)
        if cached is not None:
            self.perf.matcher_cache_hits += 1
            self._scope_rule_stats(cached, list_name)
            return cached
        history = self.histories[list_name]
        network_rules = revision.filter_list.network_rules
        matcher: Optional[NetworkMatcher] = None
        index = history.index_of_date(revision.date)
        if index is not None and index > 0:
            base = self._matcher_cache.get((list_name, history[index - 1].date))
            if base is not None:
                added, removed = history.network_rule_delta(index)
                derived = base.apply_delta(added, removed)
                # Line-set deltas collapse duplicate rules; fall back to a
                # full build if the derived rule count disagrees.
                if len(derived) == len(network_rules):
                    matcher = derived
                    self.perf.matcher_incremental_builds += 1
        if matcher is None:
            matcher = NetworkMatcher(network_rules, stats=self.perf)
            self.perf.matcher_full_builds += 1
        self._scope_rule_stats(matcher, list_name)
        self._matcher_cache.put(key, matcher)
        return matcher

    @staticmethod
    def _scope_rule_stats(sink, list_name: str) -> None:
        """Point a matcher/adblocker at the list's rule-stats scope.

        Re-asserted on every cache retrieval (one global read + attribute
        store) so engines stay correct even if the collector is installed
        after the caches warmed; a ``None`` collector keeps the sink's
        disabled fast path."""
        collector = get_rule_stats()
        sink.rule_stats = (
            collector.scope(list_name) if collector is not None else None
        )

    def _adblocker(self, list_name: str, revision: Revision) -> Adblocker:
        key = (list_name, revision.date)
        cached = self._adblocker_cache.get(key)
        if cached is not None:
            self.perf.adblocker_cache_hits += 1
            self._scope_rule_stats(cached, list_name)
            return cached
        element_only = FilterList(name=list_name)
        element_only.rules = [
            parsed
            for parsed in revision.filter_list.rules
            if isinstance(parsed.rule, ElementRule)
        ]
        adblocker = Adblocker([element_only])
        self._scope_rule_stats(adblocker, list_name)
        self.perf.adblocker_builds += 1
        self._adblocker_cache.put(key, adblocker)
        return adblocker

    def _final_matchers(self) -> Dict[str, NetworkMatcher]:
        """One matcher per list over its latest revision (Figure 7 scans)."""
        matchers: Dict[str, NetworkMatcher] = {}
        for name, history in self.histories.items():
            latest = history.latest()
            if latest is not None:
                matchers[name] = self._matcher(name, latest)
        return matchers

    # -- matching one record ----------------------------------------------------

    @staticmethod
    def record_urls(record: CrawlRecord) -> List[str]:
        """Original request URLs of a crawl record (archive prefix stripped)."""
        return record.truncated_urls()

    def http_match(
        self,
        list_name: str,
        record: CrawlRecord,
        profile: Optional[RequestProfile] = None,
    ) -> Optional[Tuple[str, bool]]:
        """First URL of the record blocked by the contemporaneous list.

        Returns ``(matched_url, is_third_party)`` or ``None``. A website is
        anti-adblocking for a list when any of its request URLs is blocked
        by the list's HTTP rules (§4.2). ``profile`` lets callers thread a
        precomputed :class:`RequestProfile` through; otherwise the record's
        memoized profile is used.
        """
        revision = self._revision(list_name, record.month)
        if revision is None:
            return None
        matcher = self._matcher(list_name, revision)
        if profile is None:
            profile = profile_record(record, self.perf)
        page_domain = record.domain
        for url_profile in profile.urls:
            if matcher.match_profile(url_profile, page_domain).blocked:
                return url_profile.url, url_profile.third_party
        return None

    def html_match(
        self, list_name: str, record: CrawlRecord, document=None
    ) -> bool:
        """Whether the stored page triggers the list's HTML element rules.

        ``document`` lets callers share one parsed DOM across lists (the
        hiding flags it accumulates do not affect trigger detection).
        """
        revision = self._revision(list_name, record.month)
        if revision is None or not record.html:
            return False
        adblocker = self._adblocker(list_name, revision)
        if document is None:
            document = parse_html(record.html)
        triggered = adblocker.hide_elements(document, f"http://{record.domain}/")
        return bool(triggered)

    # -- full analysis --------------------------------------------------------------

    def analyze(
        self,
        crawl: CrawlResult,
        html_rules: bool = True,
        workers: Optional[int] = None,
    ) -> CoverageResult:
        """Run the §4.2 pipeline over every usable crawl record.

        ``workers`` (default: the ``REPRO_WORKERS`` env var, itself
        defaulting to 1) shards the record loop across processes; any
        sharded run merges to exactly the serial result.

        Each call is an independent run: the analyzer's perf counters
        reset on entry, so back-to-back ``analyze()`` calls never
        accumulate stale counts (matcher/adblocker caches persist —
        only the *accounting* restarts).
        """
        workers = repro_workers() if workers is None else max(int(workers), 1)
        self.perf.reset()
        with trace_span(
            "replay:analyze", workers=workers, records=len(crawl.records)
        ) as span:
            if workers > 1 and len(crawl.records) > 1:
                result = self._analyze_parallel(crawl, html_rules, workers, span)
            else:
                result = self._analyze_records(crawl.records, html_rules)
            # Months with zero matches still need series entries.
            months = sorted({record.month for record in crawl.records})
            for name in self.histories:
                for month in months:
                    result.http_series[name].setdefault(month, 0)
                    result.html_series[name].setdefault(month, 0)
            span.set(usable_records=self.perf.records, elapsed_s=self.perf.elapsed)
        return result

    def _empty_result(self) -> CoverageResult:
        result = CoverageResult()
        for name in self.histories:
            result.http_series[name] = {}
            result.html_series[name] = {}
            result.first_detected[name] = {}
            result.third_party_detection[name] = {}
        return result

    def _analyze_records(
        self, records: Sequence[CrawlRecord], html_rules: bool
    ) -> CoverageResult:
        """The serial replay core (also each worker's shard body)."""
        started = time.perf_counter()
        result = self._empty_result()
        final_matchers = self._final_matchers()
        if html_rules and self._element_screen is None:
            self._element_screen = _ElementRuleScreen(self.histories)
        # URLs already scanned (negatively) against a final matcher for a
        # domain: request sets repeat month over month, so only new URLs
        # need the Figure 7 presence probe.
        final_negative: Dict[Tuple[str, str], Set[str]] = {}
        for record in records:
            if not record.usable:
                continue
            self.perf.records += 1
            profile = profile_record(record, self.perf)
            # Anti-adblock *presence* proxy: any request matching any rule
            # (either polarity) of any final list version — used for
            # Figure 7's "anti-adblocker added to the website" dates.
            if record.domain not in result.site_first_seen:
                for name, matcher in final_matchers.items():
                    seen_negative = final_negative.setdefault(
                        (name, record.domain), set()
                    )
                    fresh = [
                        up for up in profile.urls if up.url not in seen_negative
                    ]
                    if self._any_match_profile(matcher, record.domain, fresh):
                        result.site_first_seen.setdefault(record.domain, record.month)
                        break
                    seen_negative.update(up.url for up in fresh)
            may_html = (
                html_rules
                and bool(record.html)
                and self._element_screen.may_trigger(record.html)
            )
            document = parse_html(record.html) if may_html else None
            if may_html:
                self.perf.html_parses += 1
            for name in self.histories:
                matched = self.http_match(name, record, profile)
                html_hit = may_html and self.html_match(name, record, document)
                if matched is not None:
                    result.http_series[name][record.month] = (
                        result.http_series[name].get(record.month, 0) + 1
                    )
                if html_hit:
                    result.html_series[name][record.month] = (
                        result.html_series[name].get(record.month, 0) + 1
                    )
                if matched is not None or html_hit:
                    result.first_detected[name].setdefault(record.domain, record.month)
                    if matched is not None:
                        result.third_party_detection[name].setdefault(
                            record.domain, matched[1]
                        )
        self.perf.elapsed += time.perf_counter() - started
        return result

    def _slim_records(
        self, groups: List[List[CrawlRecord]], html_rules: bool
    ) -> List[List[CrawlRecord]]:
        """Shard payloads: records without HAR bodies, with truncated URLs
        precomputed and HTML pre-screened (blank HTML can trigger nothing),
        so per-shard pickling stays proportional to what workers replay."""
        screen = self._element_screen
        slimmed: List[List[CrawlRecord]] = []
        for group in groups:
            slim_group: List[CrawlRecord] = []
            for record in group:
                keep_html = (
                    html_rules
                    and bool(record.html)
                    and screen.may_trigger(record.html)
                )
                clone = CrawlRecord(
                    domain=record.domain,
                    month=record.month,
                    status=record.status,
                    har=None,
                    html=record.html if keep_html else "",
                    capture_date=record.capture_date,
                )
                clone._truncated_urls = (
                    record.truncated_urls() if record.usable else []
                )
                slim_group.append(clone)
            slimmed.append(slim_group)
        return slimmed

    def _map_shards(self, shards: List[list], task, extra=()):
        """Run one worker task per shard via the shared fork-first pool."""
        return map_shards(
            shards,
            task,
            state=self.histories,
            make_worker_state=_make_worker_analyzer,
            extra=extra,
        )

    @staticmethod
    def _shard_ranges(
        crawl: CrawlResult, shards: List[List[CrawlRecord]]
    ) -> Optional[List[Tuple[int, int]]]:
        """Map contiguous record shards back to (lo, hi) index ranges.

        Only valid when the flattened shards *are* ``crawl.records`` in
        order (true for crawler-built results, where each domain's
        records are contiguous); verified by identity spot checks so a
        reordered result falls back instead of replaying wrong slices.
        """
        ranges: List[Tuple[int, int]] = []
        records = crawl.records
        lo = 0
        for shard in shards:
            hi = lo + len(shard)
            if (
                hi > len(records)
                or records[lo] is not shard[0]
                or records[hi - 1] is not shard[-1]
            ):
                return None
            ranges.append((lo, hi))
            lo = hi
        return ranges if lo == len(records) else None

    def _analyze_persistent(
        self, crawl: CrawlResult, shards: List[list], html_rules: bool
    ):
        """Fan the replay out over the persistent pool, if it fits.

        The pool must have *this* crawl and *these* histories published
        (identity-checked): workers then inherit every record through
        the one fork and tasks carry only (lo, hi) index ranges — no
        record is ever pickled. Returns ``None`` (fork-per-run
        fallback) on any mismatch.
        """
        pool = get_persistent_pool()
        if (
            pool is None
            or not pool.matches("histories", self.histories)
            or not pool.matches("crawl", crawl)
        ):
            return None
        ranges = self._shard_ranges(crawl, shards)
        if ranges is None:
            return None
        return pool.run(
            _analyze_range_shard, ranges, make=_make_replay_state, extra=(html_rules,)
        )

    def _analyze_parallel(
        self, crawl: CrawlResult, html_rules: bool, workers: int, span=None
    ) -> CoverageResult:
        """Shard the record loop by domain across a process pool."""
        started = time.perf_counter()
        groups = crawl.domain_groups()
        if fork_context() is not None:
            # Forked workers inherit the records; they screen and profile
            # their own shards in parallel.
            shards = split_shards(groups, workers)
        else:  # pragma: no cover - non-fork platforms
            if html_rules and self._element_screen is None:
                self._element_screen = _ElementRuleScreen(self.histories)
            shards = split_shards(self._slim_records(groups, html_rules), workers)
        if len(shards) <= 1:
            return self._analyze_records(crawl.records, html_rules)
        if span is not None:
            span.set(shards=len(shards))
        partials = self._analyze_persistent(crawl, shards, html_rules)
        if partials is None:
            partials = self._map_shards(shards, _analyze_shard, extra=(html_rules,))
        # Intern month objects so the merged result's object graph (and
        # therefore its pickled bytes) matches the serial run, where equal
        # dates are one shared object from the crawl's month range.
        canon: Dict[date, date] = {}
        for record in crawl.records:
            canon.setdefault(record.month, record.month)
        intern = lambda d: canon.setdefault(d, d)  # noqa: E731
        merged = self._empty_result()
        for index, (partial, shard_perf, payload) in enumerate(partials):
            _absorb_shard_rule_stats(payload)
            if span is not None:
                span.add_child_payload(f"shard:{index}", **payload)
            for name in self.histories:
                series = merged.http_series[name]
                for month, count in partial.http_series[name].items():
                    month = intern(month)
                    series[month] = series.get(month, 0) + count
                series = merged.html_series[name]
                for month, count in partial.html_series[name].items():
                    month = intern(month)
                    series[month] = series.get(month, 0) + count
                # Shards are domain-disjoint: plain unions are exact.
                for domain, month in partial.first_detected[name].items():
                    merged.first_detected[name][domain] = intern(month)
                merged.third_party_detection[name].update(
                    partial.third_party_detection[name]
                )
            for domain, month in partial.site_first_seen.items():
                merged.site_first_seen[domain] = intern(month)
            shard_perf.elapsed = 0.0
            self.perf.merge(shard_perf)
        self.perf.elapsed += time.perf_counter() - started
        return merged

    @staticmethod
    def _any_blocked_profile(
        matcher: NetworkMatcher, page_domain: str, urls: Sequence[UrlProfile]
    ) -> bool:
        for url_profile in urls:
            if matcher.match_profile(url_profile, page_domain).blocked:
                return True
        return False

    @staticmethod
    def _any_match_profile(
        matcher: NetworkMatcher, page_domain: str, urls: Sequence[UrlProfile]
    ) -> bool:
        """Any-polarity matching: blocking *or* exception rules count.

        Figure 7 asks when a list first *defined a rule for* an
        anti-adblocker; an exception rule whitelisting the site's bait (the
        numerama pattern) is such a rule even though it never blocks.
        """
        for url_profile in urls:
            if matcher.first_match_profile(url_profile, page_domain) is not None:
                return True
        return False

    # -- Figure 7 ------------------------------------------------------------------

    def detection_delays(
        self,
        crawl: CrawlResult,
        coverage: Optional[CoverageResult] = None,
        workers: Optional[int] = None,
    ) -> Dict[str, List[int]]:
        """Days between a site's anti-adblock appearance and each list's
        earliest matching revision (negative = rule predated the site).
        """
        workers = repro_workers() if workers is None else max(int(workers), 1)
        if coverage is None:
            coverage = self.analyze(crawl, html_rules=False, workers=workers)
        with trace_span("replay:delays", workers=workers) as span:
            # The final request set per domain (union over usable months).
            profiles_by_domain: Dict[str, Dict[str, UrlProfile]] = {}
            for record in crawl.records:
                if record.usable:
                    profile = profile_record(record, self.perf)
                    bucket = profiles_by_domain.setdefault(record.domain, {})
                    for url_profile in profile.urls:
                        bucket.setdefault(url_profile.url, url_profile)
            items = [
                (domain, first_seen, list(profiles_by_domain.get(domain, {}).values()))
                for domain, first_seen in coverage.site_first_seen.items()
            ]
            span.set(sites=len(items))
            if workers > 1 and len(items) > 1:
                shards = split_shards([[item] for item in items], workers)
                partials = self._map_shards(shards, _delays_shard)
                delays: Dict[str, List[int]] = {name: [] for name in self.histories}
                for index, (partial, shard_perf, payload) in enumerate(partials):
                    _absorb_shard_rule_stats(payload)
                    span.add_child_payload(f"shard:{index}", **payload)
                    for name, values in partial.items():
                        delays[name].extend(values)
                    shard_perf.elapsed = 0.0
                    self.perf.merge(shard_perf)
                return delays
            return self._delays_for_items(items)

    def _delays_for_items(
        self, items: Sequence[Tuple[str, date, List[UrlProfile]]]
    ) -> Dict[str, List[int]]:
        """The Figure 7 scan over (domain, first_seen, url profiles) items."""
        delays: Dict[str, List[int]] = {}
        for name, history in self.histories.items():
            delays[name] = []
            latest = history.latest()
            if latest is None:
                continue
            final_matcher = self._matcher(name, latest)
            for domain, first_seen, urls in items:
                if not self._any_match_profile(final_matcher, domain, urls):
                    continue
                rule_date = self._earliest_matching_revision(
                    name, history, domain, urls
                )
                if rule_date is not None:
                    delays[name].append((rule_date - first_seen).days)
        return delays

    def _earliest_matching_revision(
        self,
        list_name: str,
        history: FilterListHistory,
        domain: str,
        urls: Sequence[UrlProfile],
    ) -> Optional[date]:
        """Binary-search the revision history for the first matching version."""
        revisions = history.revisions
        low, high = 0, len(revisions) - 1
        if high < 0:
            return None
        if not self._revision_matches(list_name, revisions[high], domain, urls):
            return None
        earliest: Optional[date] = None
        while low <= high:
            mid = (low + high) // 2
            if self._revision_matches(list_name, revisions[mid], domain, urls):
                earliest = revisions[mid].date
                high = mid - 1
            else:
                low = mid + 1
        return earliest

    def _revision_matches(
        self,
        list_name: str,
        revision: Revision,
        domain: str,
        urls: Sequence[UrlProfile],
    ) -> bool:
        matcher = self._matcher(list_name, revision)
        return self._any_match_profile(matcher, domain, urls)


def missing_snapshot_series(crawl: CrawlResult) -> Dict[date, Dict[str, int]]:
    """Figure 5: per-month partial / not-archived / outdated counts."""
    return crawl.missing_counts_by_month()
