"""Fork-first process-pool plumbing shared by the parallel engines.

Both the §4 replay (``analysis.coverage``) and the §5 feature-extraction
engine (``core.featstore``) shard an ordered workload across a
``ProcessPoolExecutor`` and merge the shard results deterministically.
This module owns the two pieces they share:

- :func:`split_shards` — split ordered groups into contiguous,
  size-balanced shards whose concatenation preserves the serial
  iteration order (the precondition for byte-identical merges);
- :func:`map_shards` — run one task per shard, preferring the ``fork``
  start method. On fork platforms the shards (and any shared state) are
  published as module globals *before* the pool is created, so workers
  inherit them for free and tasks carry only a shard index; elsewhere
  the executor initializer seeds each worker once and tasks carry the
  pickled shards.

Workers build their per-process state exactly once (an analyzer over the
filter-list histories for the replay; nothing for feature extraction),
then run ``task(worker_state, shard, *extra)`` per shard.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence


def fork_context():
    """The ``fork`` multiprocessing context, or ``None`` if unsupported."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return None


def split_shards(groups: Sequence[list], shard_count: int) -> List[list]:
    """Split ordered groups into ≤ ``shard_count`` contiguous, size-balanced
    shards (flattened). Contiguity keeps the merged insertion order equal
    to the serial iteration order."""
    total = sum(len(group) for group in groups)
    if total == 0 or shard_count <= 1:
        return [[item for group in groups for item in group]] if total else []
    target = total / shard_count
    shards: List[list] = []
    current: list = []
    for group in groups:
        current.extend(group)
        if len(current) >= target and len(shards) < shard_count - 1:
            shards.append(current)
            current = []
    if current:
        shards.append(current)
    return shards


# -- worker-process state --------------------------------------------------------

#: Published by the parent before forking: the task callable, the shared
#: state, the worker-state factory, and the shard list.
_FORK_TASK: Optional[Callable] = None
_FORK_STATE: Any = None
_FORK_MAKE: Optional[Callable] = None
_FORK_SHARDS: Optional[List[list]] = None

#: Built once per worker process (by either initializer).
_WORKER_STATE: Any = None


def _init_fork_worker() -> None:
    global _WORKER_STATE
    _WORKER_STATE = _FORK_MAKE(_FORK_STATE) if _FORK_MAKE is not None else _FORK_STATE


def _run_fork_shard(index: int, *extra):
    return _FORK_TASK(_WORKER_STATE, _FORK_SHARDS[index], *extra)


def _init_pickle_worker(task, make, state) -> None:
    global _FORK_TASK, _WORKER_STATE
    _FORK_TASK = task
    _WORKER_STATE = make(state) if make is not None else state


def _run_pickle_shard(shard, *extra):
    return _FORK_TASK(_WORKER_STATE, shard, *extra)


def map_shards(
    shards: List[list],
    task: Callable,
    state: Any = None,
    make_worker_state: Optional[Callable] = None,
    extra: tuple = (),
) -> List[Any]:
    """Run ``task(worker_state, shard, *extra)`` for each shard in a pool.

    ``task`` and ``make_worker_state`` must be module-level (picklable)
    callables. ``make_worker_state(state)`` runs once per worker process;
    when omitted, workers see ``state`` itself. Results come back in
    shard order, so a contiguous sharding merges deterministically.
    """
    global _FORK_TASK, _FORK_STATE, _FORK_MAKE, _FORK_SHARDS
    count = len(shards)
    repeated = [[value] * count for value in extra]
    context = fork_context()
    if context is not None:
        _FORK_TASK, _FORK_STATE = task, state
        _FORK_MAKE, _FORK_SHARDS = make_worker_state, shards
        try:
            with ProcessPoolExecutor(
                max_workers=count,
                mp_context=context,
                initializer=_init_fork_worker,
            ) as pool:
                return list(pool.map(_run_fork_shard, range(count), *repeated))
        finally:
            _FORK_TASK = _FORK_STATE = _FORK_MAKE = _FORK_SHARDS = None
    with ProcessPoolExecutor(  # pragma: no cover - non-fork platforms
        max_workers=count,
        initializer=_init_pickle_worker,
        initargs=(task, make_worker_state, state),
    ) as pool:
        return list(pool.map(_run_pickle_shard, shards, *repeated))
