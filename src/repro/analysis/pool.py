"""Fork-first process-pool plumbing shared by the parallel engines.

The §4 replay (``analysis.coverage``), the §3 history folds
(``analysis.histfold``), the §4.3 live crawl (``analysis.livecrawl``),
and the §5 feature-extraction engine (``core.featstore``) all shard an
ordered workload across a ``ProcessPoolExecutor`` and merge the shard
results deterministically. This module owns the pieces they share:

- :func:`split_shards` — split ordered groups into contiguous,
  size-balanced shards whose concatenation preserves the serial
  iteration order (the precondition for byte-identical merges);
- :func:`map_shards` — one pool per call, preferring the ``fork`` start
  method. On fork platforms the shards (and any shared state) are
  published as module globals *before* the pool is created, so workers
  inherit them for free and tasks carry only a shard index; elsewhere
  the executor initializer seeds each worker once and tasks carry the
  pickled shards.
- :class:`PersistentPool` — the ``REPRO_POOL_PERSIST`` mode: one
  long-lived fork pool per process, shared by every fan-out. Shared
  state (the world, the filter-list histories, the crawl) is *published*
  into the pool before its one fork; afterwards tasks carry only small
  payloads — index ranges, artifact paths — never pickled records, and
  workers keep derived state (analyzers, matcher caches, mmap
  attachments) warm across fan-outs. Callers guard with
  :meth:`PersistentPool.matches` and fall back to :func:`map_shards`
  when the published state is not the state they need.

Workers build their per-process state exactly once (an analyzer over the
filter-list histories for the replay; nothing for feature extraction),
then run ``task(worker_state, shard, *extra)`` per shard.
"""

from __future__ import annotations

import atexit
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


def fork_context():
    """The ``fork`` multiprocessing context, or ``None`` if unsupported."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return None


def split_shards(groups: Sequence[list], shard_count: int) -> List[list]:
    """Split ordered groups into ≤ ``shard_count`` contiguous, size-balanced
    shards (flattened). Contiguity keeps the merged insertion order equal
    to the serial iteration order.

    The target size adapts to what remains unassigned, and a shard closes
    *before* absorbing a group that would overshoot the adaptive target
    by more than the shard currently undershoots it — so one large final
    group lands in its own shard instead of bloating the last one.
    """
    total = sum(len(group) for group in groups)
    if total == 0 or shard_count <= 1:
        return [[item for group in groups for item in group]] if total else []
    shards: List[list] = []
    current: list = []
    remaining = total
    for group in groups:
        shards_left = shard_count - len(shards)
        if current and shards_left > 1:
            target = remaining / shards_left
            overshoot = len(current) + len(group) - target
            undershoot = target - len(current)
            if overshoot > undershoot:
                shards.append(current)
                remaining -= len(current)
                current = []
        current.extend(group)
    if current:
        shards.append(current)
    return shards


# -- worker-process state --------------------------------------------------------

#: Published by the parent before forking: the task callable, the shared
#: state, the worker-state factory, and the shard list.
_FORK_TASK: Optional[Callable] = None
_FORK_STATE: Any = None
_FORK_MAKE: Optional[Callable] = None
_FORK_SHARDS: Optional[List[list]] = None

#: Built once per worker process (by either initializer).
_WORKER_STATE: Any = None


def _init_fork_worker() -> None:
    global _WORKER_STATE
    _WORKER_STATE = _FORK_MAKE(_FORK_STATE) if _FORK_MAKE is not None else _FORK_STATE


def _run_fork_shard(index: int, *extra):
    return _FORK_TASK(_WORKER_STATE, _FORK_SHARDS[index], *extra)


def _init_pickle_worker(task, make, state) -> None:
    global _FORK_TASK, _WORKER_STATE
    _FORK_TASK = task
    _WORKER_STATE = make(state) if make is not None else state


def _run_pickle_shard(shard, *extra):
    return _FORK_TASK(_WORKER_STATE, shard, *extra)


def map_shards(
    shards: List[list],
    task: Callable,
    state: Any = None,
    make_worker_state: Optional[Callable] = None,
    extra: tuple = (),
) -> List[Any]:
    """Run ``task(worker_state, shard, *extra)`` for each shard in a pool.

    ``task`` and ``make_worker_state`` must be module-level (picklable)
    callables. ``make_worker_state(state)`` runs once per worker process;
    when omitted, workers see ``state`` itself. Results come back in
    shard order, so a contiguous sharding merges deterministically.
    """
    global _FORK_TASK, _FORK_STATE, _FORK_MAKE, _FORK_SHARDS
    count = len(shards)
    repeated = [[value] * count for value in extra]
    context = fork_context()
    if context is not None:
        _FORK_TASK, _FORK_STATE = task, state
        _FORK_MAKE, _FORK_SHARDS = make_worker_state, shards
        try:
            with ProcessPoolExecutor(
                max_workers=count,
                mp_context=context,
                initializer=_init_fork_worker,
            ) as pool:
                return list(pool.map(_run_fork_shard, range(count), *repeated))
        finally:
            _FORK_TASK = _FORK_STATE = _FORK_MAKE = _FORK_SHARDS = None
    with ProcessPoolExecutor(  # pragma: no cover - non-fork platforms
        max_workers=count,
        initializer=_init_pickle_worker,
        initargs=(task, make_worker_state, state),
    ) as pool:
        return list(pool.map(_run_pickle_shard, shards, *repeated))


# -- the persistent pool ---------------------------------------------------------

#: The state dict a :class:`PersistentPool` published before its fork;
#: workers read it (and everything it references) through fork memory.
_POOL_PUBLISHED: Optional[Dict[str, Any]] = None

#: Per-worker cache of derived state, keyed by ``(key, make)`` so each
#: fan-out family (replay analyzer, live crawler, …) builds its expensive
#: state once per worker and keeps it warm across fan-outs.
_POOL_STATE_CACHE: Dict[Tuple, Any] = {}


def _persistent_worker_state(key: Optional[str], make: Optional[Callable]):
    token = (key, make)
    if token not in _POOL_STATE_CACHE:
        published = _POOL_PUBLISHED or {}
        base = published if key is None else published.get(key)
        _POOL_STATE_CACHE[token] = base if make is None else make(base)
    return _POOL_STATE_CACHE[token]


def _dataplane_counters() -> Dict[str, int]:
    from ..obs.metrics import get_metrics

    counters = get_metrics().as_dict()["counters"]
    return {name: value for name, value in counters.items() if name.startswith("dataplane.")}


def _run_persistent_task(task, key, make, payload, extra):
    """Worker body: run one task, reporting ``dataplane.*`` counter deltas.

    Workers die with their own metrics registries, and persistent-pool
    tasks are exactly the ones that mmap artifacts worker-side — so every
    task ships its data-plane accounting delta home for the parent to
    absorb.
    """
    state = _persistent_worker_state(key, make)
    before = _dataplane_counters()
    result = task(state, payload, *extra)
    after = _dataplane_counters()
    delta = {
        name: after[name] - before.get(name, 0)
        for name in after
        if after[name] != before.get(name, 0)
    }
    return result, delta


class PersistentPool:
    """One long-lived fork pool reused by every fan-out in a process.

    Lifecycle: ``publish()`` shared state while cold, then the first
    :meth:`run` forks the workers exactly once; from then on the published
    dict is frozen (publishing a changed value raises) and tasks carry
    only payloads. ``matches()`` is the caller's identity guard: engines
    take the persistent path only when the pool's published state *is*
    the state their fan-out needs, and fall back to :func:`map_shards`
    otherwise — so a mismatched pool can cost speed, never correctness.
    """

    def __init__(self, workers: int) -> None:
        self.workers = max(int(workers), 1)
        self.state: Dict[str, Any] = {}
        self._executor: Optional[ProcessPoolExecutor] = None
        #: fan-outs served since the fork (observability / tests).
        self.runs = 0

    # -- published state -----------------------------------------------------

    @property
    def forked(self) -> bool:
        """Whether the one fork already happened (state is frozen)."""
        return self._executor is not None

    def publish(self, key: str, value: Any) -> bool:
        """Make ``value`` reachable to workers under ``key``.

        Before the fork any value is accepted (last write wins). After
        the fork the state is frozen: re-publishing the identical object
        is a no-op, anything else returns ``False`` and the caller
        should fall back to a fork-per-run pool.
        """
        if self.forked:
            return key in self.state and self.state[key] is value
        self.state[key] = value
        return True

    def matches(self, key: str, value: Any) -> bool:
        """Whether the published ``key`` *is* (identity) ``value``."""
        return key in self.state and self.state[key] is value

    # -- running -------------------------------------------------------------

    def _ensure_executor(self) -> Optional[ProcessPoolExecutor]:
        global _POOL_PUBLISHED
        if self._executor is None:
            context = fork_context()
            if context is None:  # pragma: no cover - non-fork platforms
                return None
            _POOL_PUBLISHED = self.state
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        return self._executor

    def run(
        self,
        task: Callable,
        payloads: Sequence[Any],
        key: Optional[str] = None,
        make: Optional[Callable] = None,
        extra: tuple = (),
    ) -> Optional[List[Any]]:
        """Run ``task(worker_state, payload, *extra)`` per payload.

        ``worker_state`` is the published value under ``key`` (the whole
        published dict when ``key`` is ``None``), passed through ``make``
        once per worker and cached there — so analyzers, crawlers, and
        mmap attachments persist across fan-outs. Results come back in
        payload order; worker-side ``dataplane.*`` counter deltas are
        absorbed into the parent registry. Returns ``None`` when no fork
        pool is available (caller falls back).
        """
        executor = self._ensure_executor()
        if executor is None:  # pragma: no cover - non-fork platforms
            return None
        n = len(payloads)
        outputs = list(
            executor.map(
                _run_persistent_task,
                [task] * n,
                [key] * n,
                [make] * n,
                payloads,
                [extra] * n,
            )
        )
        self.runs += 1
        from ..obs.metrics import get_metrics

        metrics = get_metrics()
        for _, delta in outputs:
            for name, value in delta.items():
                metrics.count(name, value)
        return [result for result, _ in outputs]

    def submit(
        self,
        task: Callable,
        payload: Any,
        key: Optional[str] = None,
        make: Optional[Callable] = None,
        extra: tuple = (),
    ):
        """Dispatch one ``task(worker_state, payload, *extra)`` asynchronously.

        The pipelined sibling of :meth:`run`: the serve daemon's batcher
        uses it to keep the next batch in flight while the current one is
        being serialised back to clients. Returns a future whose
        ``result()`` yields the task result after absorbing the worker's
        ``dataplane.*`` counter delta into the parent registry, or
        ``None`` when no fork pool is available (caller falls back to
        inline execution).
        """
        executor = self._ensure_executor()
        if executor is None:  # pragma: no cover - non-fork platforms
            return None
        inner = executor.submit(_run_persistent_task, task, key, make, payload, extra)
        self.runs += 1
        return _PoolFuture(inner)

    def close(self) -> None:
        """Shut the workers down and unpublish the state."""
        global _POOL_PUBLISHED
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
            if _POOL_PUBLISHED is self.state:
                _POOL_PUBLISHED = None


class _PoolFuture:
    """Wraps an executor future to unwrap ``(result, counter_delta)``.

    The delta is merged into the parent metrics registry exactly once,
    on the first ``result()`` call.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self._absorbed = False

    def done(self) -> bool:
        return self._inner.done()

    def result(self, timeout: Optional[float] = None):
        result, delta = self._inner.result(timeout)
        if not self._absorbed:
            self._absorbed = True
            from ..obs.metrics import get_metrics

            metrics = get_metrics()
            for name, value in delta.items():
                metrics.count(name, value)
        return result


#: The process-wide persistent pool (``REPRO_POOL_PERSIST``).
_PERSISTENT: Optional[PersistentPool] = None


def get_persistent_pool() -> Optional[PersistentPool]:
    """The process-wide persistent pool, if one was set up."""
    return _PERSISTENT


def ensure_persistent_pool(workers: int) -> PersistentPool:
    """Create (or return) the process-wide persistent pool."""
    global _PERSISTENT
    if _PERSISTENT is None:
        _PERSISTENT = PersistentPool(workers)
    return _PERSISTENT


def set_persistent_pool(pool: Optional[PersistentPool]) -> Optional[PersistentPool]:
    """Swap the process-wide pool (tests); returns the previous one."""
    global _PERSISTENT
    previous, _PERSISTENT = _PERSISTENT, pool
    if previous is not None and previous is not pool:
        previous.close()
    return previous


def close_persistent_pool() -> None:
    """Shut the process-wide pool down (idempotent; also runs at exit)."""
    global _PERSISTENT
    if _PERSISTENT is not None:
        _PERSISTENT.close()
        _PERSISTENT = None


atexit.register(close_persistent_pool)
