"""Measurement pipelines reproducing §3 and §4 of the paper."""

from .comparison import (
    ExceptionStats,
    OverlapAnalysis,
    RankDistribution,
    category_distribution,
    cdf,
    exception_stats,
    overlap_analysis,
    rank_distribution,
)
from .coverage import CoverageAnalyzer, CoverageResult, missing_snapshot_series
from .evolution import (
    CompositionStats,
    EvolutionSeries,
    composition_stats,
    evolution_series,
    mean_update_cadence,
    update_cadence,
)
from .histfold import run_folds
from .livecrawl import LiveCrawler, LiveCrawlResult
from .robustness import Interval, bootstrap_mean, bootstrap_proportion, bootstrap_statistic, seed_sensitivity
from .charts import cdf_chart, line_chart
from .report import percent, render_cdf, render_multi_series, render_series, render_table

__all__ = [
    "ExceptionStats",
    "OverlapAnalysis",
    "RankDistribution",
    "category_distribution",
    "cdf",
    "exception_stats",
    "overlap_analysis",
    "rank_distribution",
    "CoverageAnalyzer",
    "CoverageResult",
    "missing_snapshot_series",
    "CompositionStats",
    "EvolutionSeries",
    "composition_stats",
    "evolution_series",
    "mean_update_cadence",
    "update_cadence",
    "run_folds",
    "LiveCrawler",
    "LiveCrawlResult",
    "Interval",
    "bootstrap_mean",
    "bootstrap_proportion",
    "bootstrap_statistic",
    "seed_sensitivity",
    "cdf_chart",
    "line_chart",
    "percent",
    "render_cdf",
    "render_multi_series",
    "render_series",
    "render_table",
]
