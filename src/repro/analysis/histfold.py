"""Sharded §3 history folds.

The §3 experiments (Figures 1–3, Tables 1–2, the §3.3 prose numbers) all
reduce to a handful of *independent* per-list folds: evolution series,
composition stats, first-appearance maps, overlap inputs. Each fold is a
pure function of one :class:`~repro.filterlist.history.FilterListHistory`,
so they shard trivially across the fork-first process pool shared with
the §4 replay and §5 feature engines (``analysis.pool``).

:func:`run_folds` is the one entry point: give it ``(label, fn, arg)``
jobs and it runs them serially under ``REPRO_WORKERS=1`` (one span per
job) or sharded across the pool otherwise (per-job wall/CPU payloads
grafted onto an umbrella span). Results come back in job order either
way, so consumers merge deterministically and rendered artifacts stay
byte-identical to the serial run. Worker-side ``history.*`` counter
deltas (parsed-rule cache hits, lines parsed, revisions folded) are
merged into the parent's :data:`~repro.filterlist.parser.HISTORY_COUNTERS`
and the obs metrics registry, exactly like the replay engine's
``PerfCounters``.

``fn`` must be a module-level callable and its result picklable: the
fork pool ships results (and, on non-fork platforms, the jobs
themselves) across process boundaries.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..filterlist.parser import count_history, get_history_counters
from ..obs.trace import span as trace_span
from .perf import repro_workers
from .pool import get_persistent_pool, map_shards, split_shards

#: One independent history fold: (display label, module-level fn, argument).
FoldJob = Tuple[str, Callable[[Any], Any], Any]


def _run_job(job: FoldJob) -> Tuple[Any, dict]:
    """Run one fold, returning (result, flat telemetry payload)."""
    label, fn, arg = job
    wall0, cpu0 = time.perf_counter(), time.process_time()
    before = get_history_counters().snapshot()
    result = fn(arg)
    delta = get_history_counters().since(before)
    payload = {
        "wall_s": time.perf_counter() - wall0,
        "cpu_s": time.process_time() - cpu0,
    }
    payload.update({name: value for name, value in delta.as_dict().items() if value})
    return result, payload


def _fold_shard(_state, shard: List[FoldJob]):
    """Worker task: run a shard's jobs, reporting results + counter deltas."""
    counters = get_history_counters()
    before = counters.snapshot()
    results: List[Any] = []
    payloads: List[Tuple[str, dict]] = []
    for job in shard:
        result, payload = _run_job(job)
        results.append(result)
        payloads.append((job[0], payload))
    return results, payloads, counters.since(before).as_dict()


def _fold_ref_shard(published, shard):
    """Persistent-pool task: jobs whose args are published-state *references*.

    Each job arrives as ``(label, fn, (key, subkey))`` and is resolved
    against the pool's published dict, so the histories themselves are
    never pickled across the process boundary.
    """
    jobs = []
    for label, fn, (key, sub) in shard:
        value = published[key]
        jobs.append((label, fn, value if sub is None else value[sub]))
    return _fold_shard(None, jobs)


def _published_ref(state: dict, arg: Any):
    """Locate ``arg`` in a published-state dict (one level of dict deep)."""
    for key, value in state.items():
        if value is arg:
            return (key, None)
        if isinstance(value, dict):
            for sub, item in value.items():
                if item is arg:
                    return (key, sub)
    return None


def _persistent_folds(shards: List[List[FoldJob]]):
    """Run fold shards on the persistent pool when every arg is published.

    Returns ``None`` (caller falls back to a fork-per-run pool) when no
    persistent pool exists or some job's argument is not reachable from
    the pool's published state — shipping it by value would defeat the
    zero-copy contract.
    """
    pool = get_persistent_pool()
    if pool is None:
        return None
    ref_shards = []
    for shard in shards:
        ref_shard = []
        for label, fn, arg in shard:
            ref = _published_ref(pool.state, arg)
            if ref is None:
                return None
            ref_shard.append((label, fn, ref))
        ref_shards.append(ref_shard)
    return pool.run(_fold_ref_shard, ref_shards)


def run_folds(jobs: Sequence[FoldJob], workers: Optional[int] = None) -> List[Any]:
    """Run independent history folds, sharded under ``REPRO_WORKERS``.

    Returns the fold results in job order. ``workers`` defaults to the
    validated ``REPRO_WORKERS`` knob; one worker (or one job) runs
    everything serially in-process.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    workers = repro_workers() if workers is None else workers
    if workers <= 1 or len(jobs) == 1:
        results = []
        for job in jobs:
            with trace_span(f"history:{job[0]}") as job_span:
                result, payload = _run_job(job)
                job_span.set(
                    **{k: v for k, v in payload.items() if k not in ("wall_s", "cpu_s")}
                )
            results.append(result)
        return results
    shards = split_shards([[job] for job in jobs], workers)
    with trace_span("history:folds", jobs=len(jobs), shards=len(shards)) as umbrella:
        partials = _persistent_folds(shards)
        if partials is None:
            partials = map_shards(shards, _fold_shard)
        results = []
        for shard_results, shard_payloads, counter_delta in partials:
            results.extend(shard_results)
            for label, payload in shard_payloads:
                umbrella.add_child_payload(f"history:{label}", **payload)
            # Graft worker-side history.* counters into the parent's
            # process-global counters and the metrics registry (workers
            # died with their own copies).
            for name, value in counter_delta.items():
                count_history(name, value)
    return results
