"""§3.2 — temporal evolution of anti-adblock filter lists (Figure 1).

Produces, for each list history, the per-revision rule counts broken down
by the six Figure 1 rule types, plus the composition percentages and
update-rate statistics quoted in the text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Dict, List, Optional, Tuple

from ..filterlist.classify import RULE_TYPE_ORDER, RuleType, http_html_split, rule_type_percentages
from ..filterlist.history import FilterListHistory


@dataclass
class EvolutionSeries:
    """Figure 1 data for one filter list."""

    name: str
    dates: List[date] = field(default_factory=list)
    #: series[rule_type][i] pairs with dates[i]
    series: Dict[RuleType, List[int]] = field(default_factory=dict)
    totals: List[int] = field(default_factory=list)

    def final_counts(self) -> Dict[RuleType, int]:
        """Rule-type counts at the last revision in the window."""
        return {rule_type: values[-1] if values else 0 for rule_type, values in self.series.items()}

    def initial_total(self) -> int:
        """Total rules at the first revision."""
        return self.totals[0] if self.totals else 0

    def final_total(self) -> int:
        """Total rules at the last revision."""
        return self.totals[-1] if self.totals else 0


def evolution_series(
    history: FilterListHistory, until: Optional[date] = None
) -> EvolutionSeries:
    """Rule-type counts per revision (optionally truncated at ``until``).

    Consumes the history's streaming :meth:`rule_type_series` fold, so a
    delta-backed history is reduced in O(total churn), not O(revisions ×
    rules) — and the fold is memoized, so repeated windows over the same
    history cost one pass.
    """
    result = EvolutionSeries(name=history.name)
    result.series = {rule_type: [] for rule_type in RULE_TYPE_ORDER}
    for revision_date, counts in history.rule_type_series():
        if until is not None and revision_date > until:
            continue
        result.dates.append(revision_date)
        total = 0
        for rule_type in RULE_TYPE_ORDER:
            value = counts.get(rule_type, 0)
            result.series[rule_type].append(value)
            total += value
        result.totals.append(total)
    return result


@dataclass
class CompositionStats:
    """The §3.2 composition and update-rate numbers for one list."""

    name: str
    total_rules: int
    http_percent: float
    html_percent: float
    type_percentages: Dict[RuleType, float]
    churn_per_revision: float
    churn_per_day: float
    first_revision: Optional[date]
    last_revision: Optional[date]
    revision_count: int


def composition_stats(
    history: FilterListHistory, until: Optional[date] = None
) -> CompositionStats:
    """Final-version composition percentages and update rates."""
    revision = history.version_at(until) if until is not None else history.latest()
    rules = revision.rules if revision is not None else []
    split = http_html_split(rules)
    return CompositionStats(
        name=history.name,
        total_rules=len(rules),
        http_percent=split["http"],
        html_percent=split["html"],
        type_percentages=rule_type_percentages(rules),
        churn_per_revision=history.average_churn_per_revision(),
        churn_per_day=history.average_churn_per_day(),
        first_revision=history.first_date,
        last_revision=history.last_date,
        revision_count=len(history),
    )


def update_cadence(history: FilterListHistory) -> List[Tuple[date, int]]:
    """Days between consecutive revisions (detects AAK's monthly shift).

    Edge cases are well-defined rather than surprising: an empty or
    single-revision history has no gaps (empty list), and same-day
    revisions contribute explicit 0-day gaps.
    """
    dates = [revision.date for revision in history]
    return [
        (dates[i], (dates[i] - dates[i - 1]).days) for i in range(1, len(dates))
    ]


def mean_update_cadence(history: FilterListHistory) -> float:
    """Mean days between consecutive revisions, safe on degenerate input.

    Returns 0.0 for histories with fewer than two revisions instead of
    dividing by an empty gap list, and treats an all-same-day history as
    cadence 0.0 (revisions arrived faster than the date resolution) — the
    two edge cases the streaming churn fold also has to survive.
    """
    gaps = update_cadence(history)
    if not gaps:
        return 0.0
    return sum(days for _, days in gaps) / len(gaps)
