"""Request-profile precomputation for the §4 replay engine.

``CoverageAnalyzer`` evaluates every request URL of every crawl record
against *many* matchers: two list histories × ~60 contemporaneous
revisions × block/allow passes, plus the final-version scans feeding
Figure 7. The per-URL derivations those matchers need — Wayback prefix
truncation, lowercase index tokens, resource type, third-party flag — do
not depend on the list or revision, only on (URL, page domain). A
:class:`RequestProfile` computes each of them exactly once per record and
is memoized on the record object itself, so the block pass, the allow
pass, every list, and every revision all reuse the same arrays.
"""

from __future__ import annotations

from datetime import date
from typing import List, Optional, Tuple

from ..filterlist.matcher import url_tokens
from ..wayback.crawler import CrawlRecord
from ..web.url import is_third_party, resource_type_from_url

#: Resource type assumed when a URL's extension is uninformative; §4 treats
#: unknown requests as scripts (the adversarial-for-coverage default).
DEFAULT_RESOURCE_TYPE = "script"

#: Attribute under which a record's profile is memoized.
_PROFILE_ATTR = "_request_profile"


class UrlProfile:
    """One request URL with every matcher-input derivation precomputed."""

    __slots__ = ("url", "tokens", "resource_type", "third_party")

    def __init__(
        self,
        url: str,
        tokens: Tuple[str, ...],
        resource_type: str,
        third_party: bool,
    ) -> None:
        self.url = url
        self.tokens = tokens
        self.resource_type = resource_type
        self.third_party = third_party

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UrlProfile(url={self.url!r}, resource_type={self.resource_type!r}, "
            f"third_party={self.third_party!r})"
        )

    # Profiles travel to worker processes attached to their records.
    def __getstate__(self):
        return (self.url, self.tokens, self.resource_type, self.third_party)

    def __setstate__(self, state):
        self.url, self.tokens, self.resource_type, self.third_party = state


class RequestProfile:
    """Per-record precomputation shared across lists, revisions, passes."""

    __slots__ = ("domain", "month", "urls")

    def __init__(self, domain: str, month: date, urls: List[UrlProfile]) -> None:
        self.domain = domain
        self.month = month
        self.urls = urls

    def __len__(self) -> int:
        return len(self.urls)

    def raw_urls(self) -> List[str]:
        """The truncated URL strings, in request order."""
        return [profile.url for profile in self.urls]

    def __getstate__(self):
        return (self.domain, self.month, self.urls)

    def __setstate__(self, state):
        self.domain, self.month, self.urls = state


def build_profile(record: CrawlRecord) -> RequestProfile:
    """Compute a record's profile (no memoization; see ``profile_record``)."""
    urls: List[UrlProfile] = []
    for url in record.truncated_urls():
        urls.append(
            UrlProfile(
                url=url,
                tokens=url_tokens(url),
                resource_type=resource_type_from_url(
                    url, default=DEFAULT_RESOURCE_TYPE
                ),
                third_party=is_third_party(url, record.domain),
            )
        )
    return RequestProfile(domain=record.domain, month=record.month, urls=urls)


def profile_record(record: CrawlRecord, stats=None) -> RequestProfile:
    """The record's profile, computed once and memoized on the record.

    ``stats`` (optional, duck-typed ``profile_builds``/``profile_hits``)
    lets the analyzer's perf counters report reuse rates.
    """
    cached: Optional[RequestProfile] = getattr(record, _PROFILE_ATTR, None)
    if cached is not None:
        if stats is not None:
            stats.profile_hits += 1
        return cached
    profile = build_profile(record)
    setattr(record, _PROFILE_ATTR, profile)
    if stats is not None:
        stats.profile_builds += 1
    return profile
