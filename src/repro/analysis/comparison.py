"""§3.3 — comparative analysis of the two anti-adblock lists.

Covers Table 1 (targeted domains by Alexa rank bucket), Figure 2 (domain
categories), the exception/non-exception domain ratios, the overlap
accounting (282 common domains; who listed each first), and Figure 3 (the
CDF of addition-time differences for overlapping domains).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..filterlist.classify import domains_by_exception_status, targeted_domains
from ..filterlist.history import FilterListHistory
from ..synthesis.alexa import DomainPopulation, bucket_for_rank, RANK_BUCKETS
from ..synthesis.categories import CategorizationService


@dataclass
class RankDistribution:
    """Table 1 row set for one list."""

    name: str
    counts: Dict[str, int] = field(default_factory=dict)
    unranked: int = 0

    @property
    def total(self) -> int:
        """Total domains across all rank buckets plus unranked ones."""
        return sum(self.counts.values()) + self.unranked


def rank_distribution(
    history: FilterListHistory,
    population: DomainPopulation,
    until: Optional[date] = None,
) -> RankDistribution:
    """Bucket a list's targeted domains by Alexa rank (Table 1)."""
    revision = history.version_at(until) if until is not None else history.latest()
    domains = targeted_domains(revision.rules) if revision is not None else []
    result = RankDistribution(
        name=history.name, counts={bucket: 0 for bucket, _, _ in RANK_BUCKETS}
    )
    for domain in domains:
        rank = population.rank_of(domain)
        if rank is None:
            result.unranked += 1
        else:
            result.counts[bucket_for_rank(rank)] += 1
    return result


def category_distribution(
    history: FilterListHistory,
    service: CategorizationService,
    until: Optional[date] = None,
) -> Dict[str, int]:
    """Figure 2 data: category counts for a list's targeted domains."""
    revision = history.version_at(until) if until is not None else history.latest()
    domains = targeted_domains(revision.rules) if revision is not None else []
    return service.distribution(domains)


@dataclass
class ExceptionStats:
    """§3.3 exception/non-exception domain accounting for one list."""

    name: str
    exception_domains: int
    non_exception_domains: int

    @property
    def ratio(self) -> float:
        """Exception : non-exception, as a single float."""
        if self.non_exception_domains == 0:
            return float("inf")
        return self.exception_domains / self.non_exception_domains


def exception_stats(
    history: FilterListHistory, until: Optional[date] = None
) -> ExceptionStats:
    """Exception vs non-exception domain counts for a list's latest rules."""
    revision = history.version_at(until) if until is not None else history.latest()
    rules = revision.rules if revision is not None else []
    split = domains_by_exception_status(rules)
    return ExceptionStats(
        name=history.name,
        exception_domains=len(split["exception"]),
        non_exception_domains=len(split["non_exception"]),
    )


@dataclass
class OverlapAnalysis:
    """§3.3 overlap accounting and Figure 3's distribution."""

    common_domains: List[str] = field(default_factory=list)
    first_in_a: int = 0
    first_in_b: int = 0
    same_day: int = 0
    #: (domain, date_a - date_b in days); negative = A listed it first.
    differences_days: List[int] = field(default_factory=list)

    @property
    def overlap_count(self) -> int:
        """Number of domains common to both lists."""
        return len(self.common_domains)


def overlap_analysis(
    history_a: FilterListHistory, history_b: FilterListHistory
) -> OverlapAnalysis:
    """Compare domain addition dates between two lists.

    The paper's instance: A = Combined EasyList, B = Anti-Adblock Killer;
    ``first_in_a`` then counts domains the Combined EasyList added first.

    Both first-appearance maps come from the histories' memoized
    streaming folds, so calling this from several experiments (fig3,
    sec33) re-reads cached state instead of re-scanning every revision.
    """
    first_a = history_a.domain_first_appearance()
    first_b = history_b.domain_first_appearance()
    result = OverlapAnalysis()
    for domain in sorted(set(first_a) & set(first_b)):
        result.common_domains.append(domain)
        delta = (first_a[domain] - first_b[domain]).days
        result.differences_days.append(delta)
        if delta < 0:
            result.first_in_a += 1
        elif delta > 0:
            result.first_in_b += 1
        else:
            result.same_day += 1
    return result


def cdf(values: List[int], points: Optional[List[int]] = None) -> List[Tuple[int, float]]:
    """Empirical CDF evaluated at ``points`` (Figures 3 and 7).

    Defaults to the paper's x-axis: -1080 to 1080 days in 180-day steps.
    """
    if points is None:
        points = list(range(-1080, 1081, 180))
    if not values:
        return [(point, 0.0) for point in points]
    data = np.sort(np.asarray(values))
    return [
        (point, float(np.searchsorted(data, point, side="right")) / len(data))
        for point in points
    ]
