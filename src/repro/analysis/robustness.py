"""Statistical robustness helpers for the measured rates.

The paper reports point estimates (331 of 5,000; 4,931 of 99,396; 92.5%
TP). A reproduction should say how stable its own numbers are, so this
module provides nonparametric bootstrap confidence intervals over the
unit of measurement (websites for coverage rates, scripts for classifier
rates), plus a seed-sensitivity harness that re-runs a statistic across
world seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np


@dataclass(frozen=True)
class Interval:
    """A bootstrap percentile confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float = 0.95

    def __str__(self) -> str:
        return f"{self.estimate:.4f} [{self.low:.4f}, {self.high:.4f}]"

    @property
    def width(self) -> float:
        """Interval width (a stability measure)."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether the interval covers ``value``."""
        return self.low <= value <= self.high


def bootstrap_proportion(
    successes: int,
    total: int,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Interval:
    """Percentile bootstrap CI for a proportion (e.g. coverage rate).

    Resamples the Bernoulli outcomes with replacement; for the binomial
    case this matches resampling the underlying site list.
    """
    if total <= 0:
        return Interval(estimate=0.0, low=0.0, high=0.0, confidence=confidence)
    outcomes = np.zeros(total, dtype=np.int8)
    outcomes[:successes] = 1
    return bootstrap_mean(outcomes, n_resamples=n_resamples, confidence=confidence, seed=seed)


def bootstrap_mean(
    values: Sequence[float],
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Interval:
    """Percentile bootstrap CI for the mean of ``values``."""
    data = np.asarray(values, dtype=np.float64)
    if data.size == 0:
        return Interval(estimate=0.0, low=0.0, high=0.0, confidence=confidence)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, data.size, size=(n_resamples, data.size))
    means = data[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return Interval(
        estimate=float(data.mean()),
        low=float(low),
        high=float(high),
        confidence=confidence,
    )


def bootstrap_statistic(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Interval:
    """Percentile bootstrap CI for an arbitrary statistic (median, CDF@x…)."""
    data = np.asarray(values, dtype=np.float64)
    if data.size == 0:
        return Interval(estimate=0.0, low=0.0, high=0.0, confidence=confidence)
    rng = np.random.default_rng(seed)
    samples = np.array(
        [
            statistic(data[rng.integers(0, data.size, size=data.size)])
            for _ in range(n_resamples)
        ]
    )
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(samples, [alpha, 1.0 - alpha])
    return Interval(
        estimate=float(statistic(data)),
        low=float(low),
        high=float(high),
        confidence=confidence,
    )


def seed_sensitivity(
    run: Callable[[int], float], seeds: Sequence[int]
) -> List[float]:
    """Evaluate a statistic across world seeds (generative uncertainty).

    The bootstrap above captures sampling noise *within* one synthetic
    world; this captures how much the statistic moves when the whole
    world is regenerated. Expensive — callers pick small seed lists.
    """
    return [float(run(seed)) for seed in seeds]
