"""Table 3 — detection accuracy across feature sets and classifiers.

10-fold cross-validated TP/FP rates for {AdaBoost+SVM, SVM} × {all,
literal, keyword} × feature counts, on the corpus labeled by the filter
lists (§5's protocol). Shapes to reproduce: TP ≳ 99% everywhere, FP in
the low single digits, with AdaBoost+SVM on the keyword feature set among
the best configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..analysis.report import render_table
from ..core.crossval import Metrics
from ..core.pipeline import DetectorConfig, EvaluationCache, evaluate_detector
from .context import ExperimentContext

#: Artifact-graph declaration: upstream stage nodes, extra code
#: scopes beyond this driver's own module file, and which campaign
#: parameter groups enter the node key directly.
GRAPH_DEPS = ("corpus",)
GRAPH_CODE = ("core", "jsast")
GRAPH_PARAM_GROUPS = ()

#: (feature_set, top_k) rows per panel, following the paper's Table 3.
TABLE3_CONFIGS: Tuple[Tuple[str, Tuple[int, ...]], ...] = (
    ("all", (10_000, 1_000, 100)),
    ("literal", (10_000, 1_000, 100)),
    ("keyword", (5_000, 1_000, 100)),
)

CLASSIFIERS = ("adaboost_svm", "svm")

CLASSIFIER_LABELS = {"adaboost_svm": "AdaBoost + SVM", "svm": "SVM"}


@dataclass
class Table3Result:
    #: (feature_set, classifier, top_k) -> metrics
    """Structured artifact data for this experiment."""
    metrics: Dict[Tuple[str, str, int], Metrics]
    n_positives: int
    n_negatives: int

    def best(self) -> Tuple[Tuple[str, str, int], Metrics]:
        """The configuration with highest TP rate, FP as tiebreaker."""
        return max(
            self.metrics.items(), key=lambda item: (item[1].tp_rate, -item[1].fp_rate)
        )


def run(ctx: ExperimentContext, n_folds: int = 10) -> Table3Result:
    """Compute this experiment's artifact from the shared context.

    Feature extraction is hoisted above the configuration loop: the
    corpus is parsed into token events exactly once (all three feature
    sets derive from the shared event cache), and one
    :class:`EvaluationCache` carries fitted fold spaces and fold
    predictions across the 18 configurations.
    """
    corpus = ctx.corpus
    sources = corpus.sources()
    labels = corpus.labels()
    cache = EvaluationCache()
    metrics: Dict[Tuple[str, str, int], Metrics] = {}
    for feature_set, top_ks in TABLE3_CONFIGS:
        features = ctx.corpus_features(feature_set)
        for classifier in CLASSIFIERS:
            for top_k in top_ks:
                config = DetectorConfig(
                    feature_set=feature_set,
                    top_k=top_k,
                    classifier=classifier,
                    seed=ctx.world.seed,
                )
                metrics[(feature_set, classifier, top_k)] = evaluate_detector(
                    sources,
                    labels,
                    config=config,
                    n_folds=n_folds,
                    features=features,
                    cache=cache,
                )
    return Table3Result(
        metrics=metrics,
        n_positives=len(corpus.positives),
        n_negatives=len(corpus.negatives),
    )


def render(result: Table3Result) -> str:
    """Render the artifact as paper-style text."""
    headers = ["Feature set", "Classifier", "# Features", "TP rate (%)", "FP rate (%)"]
    rows: List[List[object]] = []
    for feature_set, top_ks in TABLE3_CONFIGS:
        for classifier in CLASSIFIERS:
            for top_k in top_ks:
                m = result.metrics[(feature_set, classifier, top_k)]
                rows.append(
                    [
                        feature_set,
                        CLASSIFIER_LABELS[classifier],
                        f"{top_k // 1000}K" if top_k >= 1000 else str(top_k),
                        f"{100 * m.tp_rate:.1f}",
                        f"{100 * m.fp_rate:.1f}",
                    ]
                )
    title = (
        "Table 3: Accuracy of the ML approach "
        f"(corpus: {result.n_positives} anti-adblock / {result.n_negatives} benign, 10-fold CV)"
    )
    return render_table(headers, rows, title=title)


def main() -> None:  # pragma: no cover
    """CLI entry point: run at the REPRO_SCALE context and print."""
    from .context import shared_context

    print(render(run(shared_context())))


if __name__ == "__main__":  # pragma: no cover
    main()
