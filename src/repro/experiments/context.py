"""Shared experiment context: one world, one crawl, reused by every driver.

The paper's artifacts all derive from the same measurement campaign, so
the drivers share a lazily-built :class:`ExperimentContext`. ``scale``
controls fidelity: 1.0 is paper scale (top-5K crawled, top-100K live);
the default 0.08 (400 sites / 8K live) reproduces every shape in seconds.
Set the ``REPRO_SCALE`` environment variable to override globally.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..analysis.coverage import CoverageAnalyzer, CoverageResult
from ..analysis.livecrawl import LiveCrawler, LiveCrawlResult
from ..analysis.perf import PerfCounters, repro_workers
from ..core.corpus import Corpus, build_corpus
from ..filterlist.history import FilterListHistory
from ..filterlist.matcher import NetworkMatcher
from ..synthesis.listgen import FilterListGenerator, generate_all_lists
from ..synthesis.seeds import DEFAULT_SEED
from ..synthesis.world import SyntheticWorld, WorldConfig
from ..wayback.archive import WaybackArchive
from ..wayback.crawler import CrawlResult, WaybackCrawler

#: Canonical display names used across all drivers.
AAK = "Anti-Adblock Killer"
CE = "Combined EasyList"


def default_scale() -> float:
    """Experiment scale from ``REPRO_SCALE`` (default 0.08)."""
    return float(os.environ.get("REPRO_SCALE", "0.08"))


def default_workers() -> int:
    """§4 replay worker count from ``REPRO_WORKERS`` (default 1 = serial)."""
    return repro_workers()


@dataclass
class ExperimentContext:
    """Lazily materialised measurement campaign."""

    world: SyntheticWorld
    _lists: Optional[Dict[str, FilterListHistory]] = field(default=None, repr=False)
    _archive: Optional[WaybackArchive] = field(default=None, repr=False)
    _crawl: Optional[CrawlResult] = field(default=None, repr=False)
    _coverage: Optional[CoverageResult] = field(default=None, repr=False)
    _analyzer: Optional[CoverageAnalyzer] = field(default=None, repr=False)
    _live: Optional[LiveCrawlResult] = field(default=None, repr=False)
    _corpus: Optional[Corpus] = field(default=None, repr=False)

    # -- construction ------------------------------------------------------------

    @classmethod
    def create(
        cls,
        scale: Optional[float] = None,
        seed: int = DEFAULT_SEED,
        config: Optional[WorldConfig] = None,
    ) -> "ExperimentContext":
        """Build a context for a scale factor (world sizes derive from it)."""
        if config is None:
            scale = default_scale() if scale is None else scale
            config = WorldConfig(
                n_sites=max(int(round(5000 * scale)), 50),
                live_top=max(int(round(100_000 * scale)), 500),
            )
        return cls(world=SyntheticWorld(config, seed=seed))

    # -- lazily built artifacts ----------------------------------------------------

    @property
    def lists(self) -> Dict[str, FilterListHistory]:
        """Histories keyed 'aak', 'easylist', 'awrl', 'combined_easylist'."""
        if self._lists is None:
            self._lists = generate_all_lists(self.world)
        return self._lists

    @property
    def histories(self) -> Dict[str, FilterListHistory]:
        """The two lists §4 replays, under their display names."""
        return {AAK: self.lists["aak"], CE: self.lists["combined_easylist"]}

    @property
    def generator(self) -> FilterListGenerator:
        """A FilterListGenerator over this context's world."""
        return FilterListGenerator(self.world)

    @property
    def archive(self) -> WaybackArchive:
        """The populated Wayback archive (built on first access)."""
        if self._archive is None:
            self._archive = self.world.build_archive()
        return self._archive

    @property
    def crawl(self) -> CrawlResult:
        """The 60-month top-segment crawl (built on first access)."""
        if self._crawl is None:
            crawler = WaybackCrawler(self.archive)
            self._crawl = crawler.crawl(
                [site.domain for site in self.world.sites],
                self.world.config.start,
                self.world.config.end,
            )
        return self._crawl

    @property
    def analyzer(self) -> CoverageAnalyzer:
        """The coverage analyzer over the two §4 lists."""
        if self._analyzer is None:
            self._analyzer = CoverageAnalyzer(self.histories)
        return self._analyzer

    @property
    def coverage(self) -> CoverageResult:
        """The §4.2 coverage result (computed on first access).

        Honours ``REPRO_WORKERS``: >1 shards the replay across a process
        pool; the merged result is identical to the serial one.
        """
        if self._coverage is None:
            self._coverage = self.analyzer.analyze(self.crawl)
        return self._coverage

    @property
    def perf(self) -> PerfCounters:
        """Replay perf counters (records/s, probe counts, cache hits)."""
        return self.analyzer.perf

    @property
    def live(self) -> LiveCrawlResult:
        """The §4.3 live-crawl result (computed on first access)."""
        if self._live is None:
            self._live = LiveCrawler(self.world, self.histories).crawl()
        return self._live

    @property
    def corpus(self) -> Corpus:
        """The §5 training corpus: top-segment scripts labeled by the lists."""
        if self._corpus is None:
            rules = []
            for key in ("aak", "combined_easylist"):
                latest = self.lists[key].latest()
                if latest is not None:
                    rules.extend(latest.filter_list.network_rules)
            matcher = NetworkMatcher(rules)
            pages = [
                self.world.snapshot(site, self.world.config.end)
                for site in self.world.sites
            ]
            self._corpus = build_corpus(pages, matcher, seed=self.world.seed)
        return self._corpus


_SHARED: Dict[float, ExperimentContext] = {}


def shared_context(scale: Optional[float] = None) -> ExperimentContext:
    """A process-wide context cache so drivers/benchmarks share the crawl."""
    key = default_scale() if scale is None else scale
    if key not in _SHARED:
        _SHARED[key] = ExperimentContext.create(scale=key)
    return _SHARED[key]
