"""Shared experiment context: one world, one crawl, reused by every driver.

The paper's artifacts all derive from the same measurement campaign, so
the drivers share a lazily-built :class:`ExperimentContext`. ``scale``
controls fidelity: 1.0 is paper scale (top-5K crawled, top-100K live);
the default 0.08 (400 sites / 8K live) reproduces every shape in seconds.
Set the ``REPRO_SCALE`` environment variable to override globally.

Every lazy stage resolves through the campaign's content-addressed
artifact graph (:mod:`repro.graph`): in-process memory first, then —
when ``REPRO_RUN_CACHE`` points at a run-cache directory — the persisted
node keyed by ``(inputs-digest, code-version)``, and only then an actual
compute. A stage served from the run cache is recorded with a
``cached`` attribute in its :class:`StageTiming`; a stage whose build
raises is recorded with an ``error`` attribute, so run manifests show
where a run died.
"""

from __future__ import annotations

import logging
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..analysis.coverage import CoverageAnalyzer, CoverageResult
from ..analysis.livecrawl import LiveCrawler, LiveCrawlResult
from ..analysis.perf import PerfCounters, repro_workers
from ..core.corpus import Corpus, build_corpus
from ..filterlist.history import FilterListHistory
from ..filterlist.matcher import NetworkMatcher
from ..analysis.pool import ensure_persistent_pool
from ..graph import ArtifactGraph, feature_node_name
from ..obs.config import list_patch_file, pool_persist, repro_scale
from ..obs.metrics import get_metrics
from ..obs.trace import span as trace_span
from ..resilience import ResiliencePolicy, default_resilience
from ..synthesis.listgen import FilterListGenerator, apply_list_patch, generate_all_lists
from ..synthesis.seeds import DEFAULT_SEED
from ..synthesis.world import SyntheticWorld, WorldConfig
from ..wayback.archive import WaybackArchive
from ..wayback.crawler import CrawlResult, WaybackCrawler

#: Canonical display names used across all drivers.
AAK = "Anti-Adblock Killer"
CE = "Combined EasyList"

logger = logging.getLogger("repro.experiments")


def default_scale() -> float:
    """Experiment scale from ``REPRO_SCALE`` (default 0.08)."""
    return repro_scale()


@dataclass
class StageTiming:
    """One completed pipeline stage of a context's lazy build chain."""

    name: str
    wall_s: float
    cpu_s: float
    #: Process peak RSS in KiB when the stage finished (``getrusage``;
    #: ``None`` where the ``resource`` module is unavailable). A high-water
    #: mark, so it attributes the *first* stage that reached a plateau.
    max_rss_kb: Optional[int] = None
    #: cpu_s / wall_s — ~1.0 means a serial CPU-bound stage; > 1 only
    #: happens via in-process threads, < 1 means waiting (or forked
    #: children doing the work, whose CPU is not counted here).
    cpu_util: Optional[float] = None
    #: The stage was served from the artifact-graph run cache (the
    #: timing covers loading the persisted node, not a recompute).
    cached: bool = False
    #: ``"ExcType: message"`` when the stage's build raised mid-way; the
    #: timing covers the work done up to the failure.
    error: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
        }
        if self.max_rss_kb is not None:
            data["max_rss_kb"] = self.max_rss_kb
        if self.cpu_util is not None:
            data["cpu_util"] = self.cpu_util
        if self.cached:
            data["cached"] = True
        if self.error is not None:
            data["error"] = self.error
        return data


def _peak_rss_kb() -> Optional[int]:
    """Current process peak RSS in KiB, or ``None`` off-POSIX."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - reported in bytes there
        rss //= 1024
    return int(rss)


def default_workers() -> int:
    """§4 replay worker count from ``REPRO_WORKERS`` (default 1 = serial)."""
    return repro_workers()


@dataclass
class ExperimentContext:
    """Lazily materialised measurement campaign."""

    world: SyntheticWorld
    _lists: Optional[Dict[str, FilterListHistory]] = field(default=None, repr=False)
    _histories: Optional[Dict[str, FilterListHistory]] = field(default=None, repr=False)
    _archive: Optional[WaybackArchive] = field(default=None, repr=False)
    _crawl: Optional[CrawlResult] = field(default=None, repr=False)
    _coverage: Optional[CoverageResult] = field(default=None, repr=False)
    _analyzer: Optional[CoverageAnalyzer] = field(default=None, repr=False)
    _live: Optional[LiveCrawlResult] = field(default=None, repr=False)
    _corpus: Optional[Corpus] = field(default=None, repr=False)
    #: (feature_set, unpack) → per-script §5 features, shared by every
    #: driver so no experiment extracts the same pair twice.
    _corpus_features: Dict[Tuple[str, bool], List[Set[str]]] = field(
        default_factory=dict, repr=False
    )
    #: Completed lazy-build stages (lists, archive, crawl, coverage, …),
    #: in execution order; the run manifest and bench harness read these.
    stage_timings: List[StageTiming] = field(default_factory=list, repr=False)
    #: One resilience policy (retry/journal/fault settings) shared by the
    #: crawl, live and corpus stages; resolved from the ``REPRO_*`` knobs
    #: on first use unless injected explicitly.
    _resilience: Optional[ResiliencePolicy] = field(default=None, repr=False)
    #: The campaign's artifact graph (run-cache warm starts); built from
    #: ``REPRO_RUN_CACHE`` on first use unless injected explicitly.
    _graph: Optional[ArtifactGraph] = field(default=None, repr=False)

    # -- observability ------------------------------------------------------------

    @contextmanager
    def _stage(self, name: str, cached: bool = False, **attributes):
        """Time one lazy build as a named stage (span + metrics + log).

        Besides wall/CPU time, each stage records the process's peak RSS
        and its CPU utilization (cpu_s / wall_s) — as span attributes
        (so ``--trace`` shows them), as ``stage.*`` gauges, and on the
        :class:`StageTiming` the run manifest serializes. A stage whose
        body raises is still recorded, with the exception on its
        ``error`` attribute; ``cached=True`` marks a run-cache load.
        """
        logger.info("stage %s: starting%s", name, " (run-cache)" if cached else "")
        wall0, cpu0 = time.perf_counter(), time.process_time()
        wall = cpu = 0.0
        rss_kb: Optional[int] = None
        cpu_util: Optional[float] = None
        error: Optional[str] = None
        try:
            with trace_span(f"stage:{name}", cached=cached, **attributes) as stage_span:
                try:
                    yield
                except BaseException as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    stage_span.set(error=error)
                    raise
                finally:
                    wall = time.perf_counter() - wall0
                    cpu = time.process_time() - cpu0
                    rss_kb = _peak_rss_kb()
                    cpu_util = round(cpu / wall, 4) if wall > 0 else 0.0
                    stage_span.set(cpu_util=cpu_util)
                    if rss_kb is not None:
                        stage_span.set(max_rss_kb=rss_kb)
        finally:
            self.stage_timings.append(
                StageTiming(
                    name,
                    wall,
                    cpu,
                    max_rss_kb=rss_kb,
                    cpu_util=cpu_util,
                    cached=cached,
                    error=error,
                )
            )
            metrics = get_metrics()
            metrics.gauge(f"stage.{name}.wall_s", wall)
            metrics.gauge(f"stage.{name}.cpu_s", cpu)
            if cpu_util is not None:
                metrics.gauge(f"stage.{name}.cpu_util", cpu_util)
            if rss_kb is not None:
                metrics.gauge(f"stage.{name}.max_rss_kb", float(rss_kb))
            if error is None:
                logger.info("stage %s: finished in %.2fs", name, wall)
            else:
                logger.warning("stage %s: failed after %.2fs (%s)", name, wall, error)

    def stage_report(self) -> List[Dict[str, object]]:
        """Stage timings as JSON-ready dicts (manifest ``stages`` block)."""
        return [stage.as_dict() for stage in self.stage_timings]

    # -- construction ------------------------------------------------------------

    @classmethod
    def create(
        cls,
        scale: Optional[float] = None,
        seed: int = DEFAULT_SEED,
        config: Optional[WorldConfig] = None,
    ) -> "ExperimentContext":
        """Build a context for a scale factor (world sizes derive from it)."""
        if config is None:
            scale = default_scale() if scale is None else scale
            config = WorldConfig(
                n_sites=max(int(round(5000 * scale)), 50),
                live_top=max(int(round(100_000 * scale)), 500),
            )
        return cls(world=SyntheticWorld(config, seed=seed))

    # -- the artifact graph --------------------------------------------------------

    @property
    def graph(self) -> ArtifactGraph:
        """The campaign's artifact graph (``REPRO_RUN_CACHE``-backed)."""
        if self._graph is None:
            self._graph = ArtifactGraph.for_world(self.world)
        return self._graph

    def _resolve_stage(
        self, name: str, build: Callable[[], object], **attrs
    ):
        """Resolve one stage: graph memory → run cache → timed compute.

        A run-cache hit is timed as a ``cached`` stage (the wall time is
        the mmap + decode cost); a corrupt entry falls through to a
        normal compute, which is then persisted back.
        """
        graph = self.graph
        if graph.has(name):
            value = None
            hit = False
            with self._stage(name, cached=True, **attrs):
                hit, value = graph.fetch(name)
            if hit:
                return value
        with self._stage(name, **attrs):
            value = build()
        graph.put(name, value)
        return value

    # -- lazily built artifacts ----------------------------------------------------

    @property
    def resilience(self) -> ResiliencePolicy:
        """The campaign's resilience policy (env-resolved on first use)."""
        if self._resilience is None:
            self._resilience = default_resilience()
        return self._resilience

    def _build_lists(self) -> Dict[str, FilterListHistory]:
        histories = generate_all_lists(self.world)
        patch = list_patch_file()
        if patch is not None:
            applied = apply_list_patch(histories, patch)
            logger.info("applied %d patch rules from %s", applied, patch)
        return histories

    @property
    def lists(self) -> Dict[str, FilterListHistory]:
        """Histories keyed 'aak', 'easylist', 'awrl', 'combined_easylist'."""
        if self._lists is None:
            self._lists = self._resolve_stage("lists", self._build_lists)
        return self._lists

    @property
    def histories(self) -> Dict[str, FilterListHistory]:
        """The two lists §4 replays, under their display names.

        Cached, so every consumer (and the persistent pool's published
        state) shares one dict object — the identity the pool's
        ``matches`` guard checks.
        """
        if self._histories is None:
            self._histories = {AAK: self.lists["aak"], CE: self.lists["combined_easylist"]}
        return self._histories

    def _ensure_pool(self) -> None:
        """Stand the process-wide persistent pool up for this campaign.

        Gated on ``REPRO_POOL_PERSIST`` and ``REPRO_WORKERS`` > 1.
        Called at the top of every fan-out stage: while the pool is
        cold each call publishes whatever campaign state exists so far
        (world, lists, histories, the crawl once built); the first
        fan-out then forks exactly once with everything published.
        State materialised only after the fork simply is not published —
        engines detect that via ``matches`` and fall back per fan-out.
        """
        if not pool_persist() or repro_workers() <= 1:
            return
        pool = ensure_persistent_pool(repro_workers())
        pool.publish("world", self.world)
        pool.publish("lists", self.lists)
        pool.publish("histories", self.histories)
        if self._crawl is not None:
            pool.publish("crawl", self._crawl)

    @property
    def generator(self) -> FilterListGenerator:
        """A FilterListGenerator over this context's world."""
        return FilterListGenerator(self.world)

    @property
    def archive(self) -> WaybackArchive:
        """The populated Wayback archive (built on first access)."""
        if self._archive is None:
            self._archive = self._resolve_stage(
                "archive", self.world.build_archive, sites=len(self.world.sites)
            )
        return self._archive

    def _build_crawl(self) -> CrawlResult:
        crawler = WaybackCrawler(self.archive, resilience=self.resilience)
        return crawler.crawl(
            [site.domain for site in self.world.sites],
            self.world.config.start,
            self.world.config.end,
        )

    @property
    def crawl(self) -> CrawlResult:
        """The 60-month top-segment crawl (built on first access).

        On a run-cache hit the crawl loads without touching the archive
        stage at all — the archive node stays on disk until some
        consumer actually needs it.
        """
        if self._crawl is None:
            graph = self.graph
            if not graph.has("crawl"):
                # Build upstream outside the stage so timings stay distinct.
                self.archive
            self._crawl = self._resolve_stage(
                "crawl", self._build_crawl, sites=len(self.world.sites)
            )
        return self._crawl

    @property
    def analyzer(self) -> CoverageAnalyzer:
        """The coverage analyzer over the two §4 lists."""
        if self._analyzer is None:
            self._analyzer = CoverageAnalyzer(self.histories)
        return self._analyzer

    def _build_coverage(self) -> CoverageResult:
        coverage = self.analyzer.analyze(self.crawl)
        # The replay engine's counters feed the unified registry as one
        # source among many (only when the replay actually ran).
        get_metrics().absorb("replay", self.analyzer.perf)
        return coverage

    @property
    def coverage(self) -> CoverageResult:
        """The §4.2 coverage result (computed on first access).

        Honours ``REPRO_WORKERS``: >1 shards the replay across a process
        pool; the merged result is identical to the serial one.
        """
        if self._coverage is None:
            graph = self.graph
            if not graph.has("coverage"):
                # Materialise upstream artifacts first so each stage's
                # span and timing cover only its own work.
                self.crawl
                self.analyzer
                self._ensure_pool()
            self._coverage = self._resolve_stage(
                "coverage", self._build_coverage, workers=repro_workers()
            )
        return self._coverage

    @property
    def perf(self) -> PerfCounters:
        """Replay perf counters (records/s, probe counts, cache hits)."""
        return self.analyzer.perf

    def _build_live(self) -> LiveCrawlResult:
        return LiveCrawler(self.world, self.histories).crawl(
            resilience=self.resilience
        )

    @property
    def live(self) -> LiveCrawlResult:
        """The §4.3 live-crawl result (computed on first access)."""
        if self._live is None:
            graph = self.graph
            if not graph.has("live"):
                self.histories
                self._ensure_pool()
            self._live = self._resolve_stage(
                "live", self._build_live, top=self.world.config.live_top
            )
        return self._live

    def _build_corpus(self) -> Corpus:
        lists = self.lists
        rules = []
        for key in ("aak", "combined_easylist"):
            latest = lists[key].latest()
            if latest is not None:
                rules.extend(latest.filter_list.network_rules)
        matcher = NetworkMatcher(rules)
        pages = [
            self.world.snapshot(site, self.world.config.end)
            for site in self.world.sites
        ]
        return build_corpus(
            pages, matcher, seed=self.world.seed, resilience=self.resilience
        )

    @property
    def corpus(self) -> Corpus:
        """The §5 training corpus: top-segment scripts labeled by the lists."""
        if self._corpus is None:
            graph = self.graph
            if not graph.has("corpus"):
                self.lists
            self._corpus = self._resolve_stage("corpus", self._build_corpus)
        return self._corpus

    def corpus_features(
        self, feature_set: str = "all", unpack: bool = True
    ) -> List[Set[str]]:
        """Per-script §5 features of the corpus (extracted at most once).

        Backed by the shared content-addressed feature store *and* the
        artifact graph: each ``(feature_set, unpack)`` pair is its own
        ``features:<set>:<u>`` node with its own stage timing, resolved
        memory → run cache → extraction (the first extraction parses
        every corpus script once; further sets are cheap filters over
        the store's cached token events).
        """
        key = (feature_set, unpack)
        cached = self._corpus_features.get(key)
        if cached is None:
            node = feature_node_name(feature_set, unpack)

            def build() -> List[Set[str]]:
                from ..core.featstore import get_feature_store

                return get_feature_store().features_for_corpus(
                    self.corpus.sources(), feature_set=feature_set, unpack=unpack
                )

            graph = self.graph
            if not graph.has(node):
                # Build upstream outside the stage so timings stay distinct.
                self.corpus
                self._ensure_pool()
            cached = self._resolve_stage(
                node,
                build,
                feature_set=feature_set,
                unpack=unpack,
                workers=repro_workers(),
            )
            self._corpus_features[key] = cached
        return cached


_SHARED: Dict[float, ExperimentContext] = {}


def shared_context(scale: Optional[float] = None) -> ExperimentContext:
    """A process-wide context cache so drivers/benchmarks share the crawl."""
    key = default_scale() if scale is None else scale
    if key not in _SHARED:
        _SHARED[key] = ExperimentContext.create(scale=key)
    return _SHARED[key]
