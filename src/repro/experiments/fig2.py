"""Figure 2 — categorization of domains in anti-adblock filter lists."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.comparison import category_distribution
from ..analysis.histfold import run_folds
from ..analysis.report import render_table
from ..synthesis.categories import CATEGORIES
from .context import AAK, CE, ExperimentContext

#: Artifact-graph declaration: upstream stage nodes, extra code
#: scopes beyond this driver's own module file, and which campaign
#: parameter groups enter the node key directly.
GRAPH_DEPS = ("lists",)
GRAPH_CODE = ("analysis", "filterlist", "synthesis")
GRAPH_PARAM_GROUPS = ("world",)


@dataclass
class Fig2Result:
    """Structured artifact data for this experiment."""
    distributions: Dict[str, Dict[str, int]]

    def percentages(self, name: str) -> Dict[str, float]:
        """Category shares (%) for one list."""
        counts = self.distributions[name]
        total = sum(counts.values())
        if total == 0:
            return {category: 0.0 for category in counts}
        return {category: 100.0 * count / total for category, count in counts.items()}


def _category_fold(args) -> Dict[str, int]:
    """One list's category distribution (an independent history fold)."""
    history, service = args
    return category_distribution(history, service)


def run(ctx: ExperimentContext) -> Fig2Result:
    """Compute this experiment's artifact from the shared context.

    One independent fold per list, sharded under ``REPRO_WORKERS``.
    """
    service = ctx.world.categories
    aak_dist, ce_dist = run_folds(
        [
            (f"fig2:{AAK}", _category_fold, (ctx.lists["aak"], service)),
            (f"fig2:{CE}", _category_fold, (ctx.lists["combined_easylist"], service)),
        ]
    )
    return Fig2Result(distributions={AAK: aak_dist, CE: ce_dist})


def render(result: Fig2Result) -> str:
    """Render the artifact as paper-style text."""
    aak_pct = result.percentages(AAK)
    ce_pct = result.percentages(CE)
    headers = ["Category", f"{AAK} (%)", f"{CE} (%)"]
    rows: List[List[object]] = []
    for category in CATEGORIES:
        rows.append([category, aak_pct.get(category, 0.0), ce_pct.get(category, 0.0)])
    return render_table(
        headers, rows, title="Figure 2: Categorization of domains in anti-adblock filter lists"
    )


def main() -> None:  # pragma: no cover
    """CLI entry point: run at the REPRO_SCALE context and print."""
    from .context import shared_context

    print(render(run(shared_context())))


if __name__ == "__main__":  # pragma: no cover
    main()
