"""§4.3 — anti-adblock detection on the live Web.

Crawls the synthetic live top segment with the most recent list versions.
Shapes to reproduce (paper, top-100K): AAK triggers HTTP rules on ≈5.0%
of reachable sites vs ≈0.2% for the Combined EasyList; HTML-rule triggers
are negligible for both; ≥97% of AAK's matches are third-party scripts.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..analysis.livecrawl import LiveCrawlResult
from ..analysis.report import render_table
from .context import AAK, CE, ExperimentContext

#: Artifact-graph declaration: upstream stage nodes, extra code
#: scopes beyond this driver's own module file, and which campaign
#: parameter groups enter the node key directly.
GRAPH_DEPS = ("live",)
GRAPH_CODE = ("analysis",)
GRAPH_PARAM_GROUPS = ()


@dataclass
class Sec43Result:
    """Structured artifact data for this experiment."""
    live: LiveCrawlResult

    def http_rate(self, name: str) -> float:
        """HTTP matches over reachable sites."""
        if self.live.reachable == 0:
            return 0.0
        return self.live.http_matches.get(name, 0) / self.live.reachable


def run(ctx: ExperimentContext) -> Sec43Result:
    """Compute this experiment's artifact from the shared context."""
    return Sec43Result(live=ctx.live)


def render(result: Sec43Result) -> str:
    """Render the artifact as paper-style text."""
    from ..analysis.robustness import bootstrap_proportion

    live = result.live
    rows = []
    for name in (AAK, CE):
        interval = bootstrap_proportion(
            live.http_matches.get(name, 0), max(live.reachable, 1)
        )
        rows.append(
            [
                name,
                live.http_matches.get(name, 0),
                f"{100 * interval.estimate:.1f}% "
                f"[{100 * interval.low:.1f}, {100 * interval.high:.1f}]",
                live.html_matches.get(name, 0),
                f"{100 * live.third_party_share(name):.0f}%",
            ]
        )
    table = render_table(
        ["List", "HTTP matches", "HTTP rate", "HTML matches", "third-party share"],
        rows,
        title=(
            f"Section 4.3: live crawl of top {live.crawled} "
            f"({live.reachable} reachable), most recent list versions"
        ),
    )
    return table + f"\n  unique matched anti-adblock scripts: {len(live.matched_scripts)}"


def main() -> None:  # pragma: no cover
    """CLI entry point: run at the REPRO_SCALE context and print."""
    from .context import shared_context

    print(render(run(shared_context())))


if __name__ == "__main__":  # pragma: no cover
    main()
