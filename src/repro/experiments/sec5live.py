"""§5 live test — classify anti-adblock scripts from the live top-100K.

Train the detector on the top-segment corpus (the sites used throughout
the retrospective study), then classify the unique anti-adblock scripts
extracted from the live crawl's detected sites, excluding the training
segment. Paper: TP rate 92.5% on 2,701 scripts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.pipeline import AntiAdblockDetector, DetectorConfig
from ..web.url import registered_domain
from .context import AAK, ExperimentContext

#: Artifact-graph declaration: upstream stage nodes, extra code
#: scopes beyond this driver's own module file, and which campaign
#: parameter groups enter the node key directly.
GRAPH_DEPS = ("corpus", "live")
GRAPH_CODE = ("core", "jsast", "synthesis", "web")
GRAPH_PARAM_GROUPS = ("world",)


@dataclass
class Sec5LiveResult:
    """Structured artifact data for this experiment."""
    n_scripts: int
    n_detected: int

    @property
    def tp_rate(self) -> float:
        """Detected fraction of the live anti-adblock scripts."""
        return self.n_detected / self.n_scripts if self.n_scripts else 0.0


def run(ctx: ExperimentContext) -> Sec5LiveResult:
    """Compute this experiment's artifact from the shared context."""
    corpus = ctx.corpus
    detector = AntiAdblockDetector(
        DetectorConfig(feature_set="keyword", top_k=1000, seed=ctx.world.seed)
    )
    # Shared corpus features: free when table3 already extracted them in
    # this process (same event cache), one parallel pass otherwise.
    detector.fit(
        corpus.sources(),
        corpus.labels(),
        features=ctx.corpus_features("keyword"),
    )

    # Live scripts from detected sites, excluding the training segment.
    training_domains = {
        registered_domain(site.domain) for site in ctx.world.sites
    }
    live = ctx.live
    detected_domains = set(live.detected_domains.get(AAK, []))
    test_scripts: List[str] = []
    seen = set()
    for ranked in ctx.world.live_domains():
        if ranked.rank <= ctx.world.config.n_sites:
            continue
        profile = ctx.world.profile_for_rank(ranked.rank)
        if registered_domain(profile.domain) in training_domains:
            continue
        if profile.domain not in detected_domains:
            continue
        deployment = profile.deployment
        if deployment is None or not deployment.script_source:
            continue
        if deployment.script_source not in seen:
            seen.add(deployment.script_source)
            test_scripts.append(deployment.script_source)

    if not test_scripts:
        return Sec5LiveResult(n_scripts=0, n_detected=0)
    predictions = detector.predict(test_scripts)
    return Sec5LiveResult(
        n_scripts=len(test_scripts), n_detected=int(np.sum(predictions))
    )


def render(result: Sec5LiveResult) -> str:
    """Render the artifact as paper-style text."""
    return (
        "Section 5 live test: classified "
        f"{result.n_scripts} anti-adblock scripts from live-crawl detections "
        f"(training segment excluded); TP rate = {result.tp_rate:.1%}"
    )


def main() -> None:  # pragma: no cover
    """CLI entry point: run at the REPRO_SCALE context and print."""
    from .context import shared_context

    print(render(run(shared_context())))


if __name__ == "__main__":  # pragma: no cover
    main()
