"""Figure 1 + §3.2 — temporal evolution of the anti-adblock filter lists.

Regenerates the three panels (Anti-Adblock Killer, Adblock Warning
Removal List, EasyList anti-adblock sections): rule counts per revision by
the six rule types, plus the composition percentages and update-rate
numbers quoted in the text.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Dict, List

from ..analysis.evolution import CompositionStats, EvolutionSeries, composition_stats, evolution_series
from ..analysis.histfold import run_folds
from ..analysis.report import render_table
from ..filterlist.classify import RULE_TYPE_ORDER
from .context import ExperimentContext

#: Artifact-graph declaration: upstream stage nodes, extra code
#: scopes beyond this driver's own module file, and which campaign
#: parameter groups enter the node key directly.
GRAPH_DEPS = ("lists",)
GRAPH_CODE = ("analysis", "filterlist")
GRAPH_PARAM_GROUPS = ()

#: The paper's Figure 1 window ends at July 2016.
FIG1_END = date(2016, 7, 31)

PANELS = (
    ("a", "aak", "Anti-Adblock Killer"),
    ("b", "awrl", "Adblock Warning Removal List"),
    ("c", "easylist", "EasyList (anti-adblock sections)"),
)


@dataclass
class Fig1Result:
    """Structured artifact data for this experiment."""
    series: Dict[str, EvolutionSeries]
    stats: Dict[str, CompositionStats]


def _panel_fold(history) -> tuple:
    """One panel's evolution series + composition stats (one history fold)."""
    return (
        evolution_series(history, until=FIG1_END),
        composition_stats(history, until=FIG1_END),
    )


def run(ctx: ExperimentContext) -> Fig1Result:
    """Compute this experiment's artifact from the shared context.

    The three panels are independent per-list folds, so they shard
    across the fork pool under ``REPRO_WORKERS``; results return in
    panel order, keeping the rendered artifact byte-identical to a
    serial run.
    """
    jobs = [(f"fig1:{key}", _panel_fold, ctx.lists[key]) for _, key, _ in PANELS]
    series = {}
    stats = {}
    for (_, key, _), (evo, comp) in zip(PANELS, run_folds(jobs)):
        series[key] = evo
        stats[key] = comp
    return Fig1Result(series=series, stats=stats)


def render(result: Fig1Result, every: int = 6, charts: bool = True) -> str:
    """Render the artifact as paper-style text."""
    blocks: List[str] = []
    if charts:
        from ..analysis.charts import line_chart

        totals = {}
        for _, key, title in PANELS:
            evo = result.series[key]
            totals[title] = dict(zip(evo.dates, evo.totals))
        blocks.append(
            line_chart(totals, title="Figure 1: total rules per list over time")
        )
    for panel, key, title in PANELS:
        evo = result.series[key]
        headers = ["month", "total"] + [
            rule_type.value.replace("HTTP rules ", "HTTP ").replace("HTML rules ", "HTML ")
            for rule_type in RULE_TYPE_ORDER
        ]
        rows = []
        for index, when in enumerate(evo.dates):
            if index % every and index != len(evo.dates) - 1:
                continue
            rows.append(
                [when.isoformat()[:7], evo.totals[index]]
                + [evo.series[rule_type][index] for rule_type in RULE_TYPE_ORDER]
            )
        blocks.append(render_table(headers, rows, title=f"Figure 1({panel}): {title}"))
        stat = result.stats[key]
        blocks.append(
            f"  final: {stat.total_rules} rules | HTTP {stat.http_percent:.1f}% / "
            f"HTML {stat.html_percent:.1f}% | {stat.churn_per_revision:.1f} rules/revision, "
            f"{stat.churn_per_day:.1f} rules/day over {stat.revision_count} revisions"
        )
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI convenience
    """CLI entry point: run at the REPRO_SCALE context and print."""
    from .context import shared_context

    print(render(run(shared_context())))


if __name__ == "__main__":  # pragma: no cover
    main()
