"""Figure 6 — websites triggering HTTP and HTML filter rules over time.

Panel (a): sites whose archived requests are blocked by the
contemporaneous HTTP rules of each list. Panel (b): sites whose archived
HTML triggers element-hiding rules. Shapes to reproduce: the Anti-Adblock
Killer List's HTTP curve rises steeply from its 2014 creation and ends an
order of magnitude above the Combined EasyList's; HTML counts stay in the
low single digits for both lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Dict

from ..analysis.report import render_multi_series
from .context import AAK, CE, ExperimentContext

#: Artifact-graph declaration: upstream stage nodes, extra code
#: scopes beyond this driver's own module file, and which campaign
#: parameter groups enter the node key directly.
GRAPH_DEPS = ("coverage",)
GRAPH_CODE = ("analysis",)
GRAPH_PARAM_GROUPS = ()


@dataclass
class Fig6Result:
    """Structured artifact data for this experiment."""
    http_series: Dict[str, Dict[date, int]]
    html_series: Dict[str, Dict[date, int]]
    third_party_share: Dict[str, float]

    def final_http(self, name: str) -> int:
        """HTTP-trigger count in the final month."""
        series = self.http_series[name]
        return series[max(series)] if series else 0


def run(ctx: ExperimentContext) -> Fig6Result:
    """Compute this experiment's artifact from the shared context."""
    coverage = ctx.coverage
    return Fig6Result(
        http_series=coverage.http_series,
        html_series=coverage.html_series,
        third_party_share={
            name: coverage.third_party_share(name) for name in (AAK, CE)
        },
    )


def render(result: Fig6Result, every: int = 4, charts: bool = True) -> str:
    """Render the artifact as paper-style text."""
    parts = []
    if charts:
        from ..analysis.charts import line_chart

        parts.append(
            line_chart(
                result.http_series,
                title="Figure 6(a): websites triggering HTTP request rules",
            )
        )
    parts += [
        render_multi_series(
            result.http_series,
            title="Figure 6(a): websites triggering HTTP request filter rules",
            every=every,
        ),
        render_multi_series(
            result.html_series,
            title="Figure 6(b): websites triggering HTML element filter rules",
            every=every,
        ),
        "Third-party share of HTTP-matched websites: "
        + ", ".join(
            f"{name}={share:.0%}" for name, share in result.third_party_share.items()
        ),
    ]
    return "\n\n".join(parts)


def main() -> None:  # pragma: no cover
    """CLI entry point: run at the REPRO_SCALE context and print."""
    from .context import shared_context

    print(render(run(shared_context())))


if __name__ == "__main__":  # pragma: no cover
    main()
