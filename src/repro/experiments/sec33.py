"""§3.3 — overlap and implementation-style comparison of the two lists.

Reports the domain overlap (paper: 282 common domains), which list adds
each overlapping domain first (paper: 185 Combined EasyList, 92 AAK,
5 same-day), and the exception:non-exception domain ratios (paper: ≈4:1
for the Combined EasyList vs ≈1:1 for AAK).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..analysis.comparison import ExceptionStats, OverlapAnalysis, exception_stats, overlap_analysis
from ..analysis.histfold import run_folds
from ..analysis.report import render_table
from .context import AAK, CE, ExperimentContext

#: Artifact-graph declaration: upstream stage nodes, extra code
#: scopes beyond this driver's own module file, and which campaign
#: parameter groups enter the node key directly.
GRAPH_DEPS = ("lists",)
GRAPH_CODE = ("analysis", "filterlist")
GRAPH_PARAM_GROUPS = ()


@dataclass
class Sec33Result:
    """Structured artifact data for this experiment."""
    overlap: OverlapAnalysis
    exceptions: Dict[str, ExceptionStats]
    domain_counts: Dict[str, int]


def _overlap_fold(histories) -> OverlapAnalysis:
    """First-appearance comparison (A = Combined EasyList, B = AAK)."""
    combined, aak = histories
    return overlap_analysis(combined, aak)


def _exception_fold(history) -> ExceptionStats:
    """One list's exception/non-exception domain split."""
    return exception_stats(history)


def _domain_count_fold(history) -> int:
    """Number of domains the list's latest revision targets."""
    return len(history.targeted_domains_latest())


def run(ctx: ExperimentContext) -> Sec33Result:
    """Compute this experiment's artifact from the shared context.

    Five independent history folds (overlap, two exception splits, two
    domain counts) sharded under ``REPRO_WORKERS``; job order fixes the
    merge, so the rendered section is byte-identical serial or parallel.
    """
    aak = ctx.lists["aak"]
    combined = ctx.lists["combined_easylist"]
    overlap, exc_aak, exc_ce, count_aak, count_ce = run_folds(
        [
            ("sec33:overlap", _overlap_fold, (combined, aak)),
            (f"sec33:exceptions:{AAK}", _exception_fold, aak),
            (f"sec33:exceptions:{CE}", _exception_fold, combined),
            (f"sec33:domains:{AAK}", _domain_count_fold, aak),
            (f"sec33:domains:{CE}", _domain_count_fold, combined),
        ]
    )
    return Sec33Result(
        overlap=overlap,
        exceptions={AAK: exc_aak, CE: exc_ce},
        domain_counts={AAK: count_aak, CE: count_ce},
    )


def render(result: Sec33Result) -> str:
    """Render the artifact as paper-style text."""
    lines = ["Section 3.3: Comparative analysis of anti-adblock lists", ""]
    lines.append(
        f"Targeted domains: {AAK}={result.domain_counts[AAK]}, "
        f"{CE}={result.domain_counts[CE]}, overlap={result.overlap.overlap_count}"
    )
    lines.append(
        f"First to add an overlapping domain: {CE}={result.overlap.first_in_a}, "
        f"{AAK}={result.overlap.first_in_b}, same day={result.overlap.same_day}"
    )
    rows = []
    for name, stats in result.exceptions.items():
        rows.append(
            [
                name,
                stats.exception_domains,
                stats.non_exception_domains,
                f"{stats.ratio:.1f}:1" if stats.non_exception_domains else "inf",
            ]
        )
    lines.append("")
    lines.append(
        render_table(
            ["List", "exception domains", "non-exception domains", "ratio"],
            rows,
            title="Exception vs non-exception domains",
        )
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    """CLI entry point: run at the REPRO_SCALE context and print."""
    from .context import shared_context

    print(render(run(shared_context())))


if __name__ == "__main__":  # pragma: no cover
    main()
