"""Seed stability — do the paper's findings survive world regeneration?

Every other experiment runs against the default world (seed 1702). This
driver regenerates small worlds under several seeds and re-measures the
qualitative findings the reproduction rests on:

1. AAK's final HTTP coverage exceeds the Combined EasyList's by a wide
   factor (Fig 6a);
2. the Combined EasyList is the more exception-heavy list (§3.3);
3. the Combined EasyList lists overlapping domains first more often than
   AAK (Fig 3);
4. the detector separates the corpus with high TP and single-digit FP
   (Table 3's operating band).

Bootstrap CIs (:mod:`repro.analysis.robustness`) capture within-world
sampling noise; this captures *generative* noise across worlds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..analysis.comparison import exception_stats, overlap_analysis
from ..analysis.coverage import CoverageAnalyzer
from ..analysis.report import render_table
from ..core.pipeline import DetectorConfig, evaluate_detector
from ..synthesis.listgen import generate_all_lists
from ..synthesis.world import SyntheticWorld, WorldConfig
from ..wayback.crawler import WaybackCrawler
from .context import AAK, CE, ExperimentContext

DEFAULT_SEEDS = (1702, 7, 42)

#: Artifact-graph declaration: this driver regenerates its own fixed
#: worlds, so the campaign's parameters stay out of its key entirely —
#: only the pinned seeds/site count and the code scopes matter.
GRAPH_DEPS = ()
GRAPH_CODE = ("analysis", "core", "filterlist", "synthesis", "wayback", "web", "resilience")
GRAPH_PARAM_GROUPS = ()
GRAPH_EXTRA = {"seeds": list(DEFAULT_SEEDS), "n_sites": 250}


@dataclass
class SeedOutcome:
    """The headline statistics for one regenerated world."""

    seed: int
    aak_final_http: int = 0
    ce_final_http: int = 0
    aak_exception_ratio: float = 0.0
    ce_exception_ratio: float = 0.0
    ce_first: int = 0
    aak_first: int = 0
    detector_tp: float = 0.0
    detector_fp: float = 0.0

    @property
    def coverage_factor(self) -> float:
        """AAK : CE final coverage ratio."""
        return self.aak_final_http / max(self.ce_final_http, 1)


@dataclass
class StabilityResult:
    """Outcomes across seeds."""

    outcomes: List[SeedOutcome] = field(default_factory=list)

    def holds_everywhere(self, predicate) -> bool:
        """Whether a finding holds for every seed."""
        return all(predicate(outcome) for outcome in self.outcomes)


def run_for_seed(seed: int, n_sites: int = 250) -> SeedOutcome:
    """Regenerate a small world under ``seed`` and re-measure."""
    world = SyntheticWorld(WorldConfig(n_sites=n_sites, live_top=n_sites), seed=seed)
    lists = generate_all_lists(world)
    aak, combined = lists["aak"], lists["combined_easylist"]
    outcome = SeedOutcome(seed=seed)

    crawl = WaybackCrawler(world.build_archive()).crawl(
        [site.domain for site in world.sites], world.config.start, world.config.end
    )
    coverage = CoverageAnalyzer({AAK: aak, CE: combined}).analyze(
        crawl, html_rules=False
    )
    last = max(coverage.http_series[AAK])
    outcome.aak_final_http = coverage.http_series[AAK][last]
    outcome.ce_final_http = coverage.http_series[CE][last]

    outcome.aak_exception_ratio = exception_stats(aak).ratio
    outcome.ce_exception_ratio = exception_stats(combined).ratio
    overlap = overlap_analysis(combined, aak)
    outcome.ce_first = overlap.first_in_a
    outcome.aak_first = overlap.first_in_b

    from ..core.corpus import build_corpus
    from ..filterlist.matcher import NetworkMatcher

    rules = list(aak.latest().filter_list.network_rules)
    rules.extend(combined.latest().filter_list.network_rules)
    pages = [world.snapshot(site, world.config.end) for site in world.sites]
    corpus = build_corpus(pages, NetworkMatcher(rules), seed=seed)
    metrics = evaluate_detector(
        corpus.sources(),
        corpus.labels(),
        config=DetectorConfig(feature_set="keyword", top_k=500, seed=seed),
        n_folds=5,
    )
    outcome.detector_tp = metrics.tp_rate
    outcome.detector_fp = metrics.fp_rate
    return outcome


def run(ctx: ExperimentContext, seeds=DEFAULT_SEEDS, n_sites: int = 250) -> StabilityResult:
    """Re-measure the headline findings across world seeds."""
    return StabilityResult(
        outcomes=[run_for_seed(seed, n_sites=n_sites) for seed in seeds]
    )


def render(result: StabilityResult) -> str:
    """Render the artifact as paper-style text."""
    rows = []
    for outcome in result.outcomes:
        rows.append(
            [
                outcome.seed,
                outcome.aak_final_http,
                outcome.ce_final_http,
                f"{outcome.coverage_factor:.1f}x",
                f"{outcome.aak_exception_ratio:.1f}:1",
                f"{outcome.ce_exception_ratio:.1f}:1",
                f"{outcome.ce_first}/{outcome.aak_first}",
                f"{outcome.detector_tp:.0%}/{outcome.detector_fp:.0%}",
            ]
        )
    return render_table(
        [
            "seed",
            "AAK http",
            "CE http",
            "AAK:CE",
            "AAK exc",
            "CE exc",
            "CE-first/AAK-first",
            "TP/FP",
        ],
        rows,
        title="Seed stability: headline findings across regenerated worlds",
    )


def main() -> None:  # pragma: no cover
    """CLI entry point: run at the REPRO_SCALE context and print."""
    from .context import shared_context

    print(render(run(shared_context())))


if __name__ == "__main__":  # pragma: no cover
    main()
