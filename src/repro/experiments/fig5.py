"""Figure 5 — websites excluded from analysis per month.

The three exclusion classes the paper tracks: partial snapshots,
not-archived URLs, and outdated URLs. Shapes to reproduce: outdated
dominates and declines over the window; not-archived grows slowly (3XX
redirect captures); partial grows slowly (anti-bot error pages).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Dict

from ..analysis.coverage import missing_snapshot_series
from ..analysis.report import render_table
from .context import ExperimentContext

#: Artifact-graph declaration: upstream stage nodes, extra code
#: scopes beyond this driver's own module file, and which campaign
#: parameter groups enter the node key directly.
GRAPH_DEPS = ("crawl",)
GRAPH_CODE = ("analysis", "wayback")
GRAPH_PARAM_GROUPS = ()


@dataclass
class Fig5Result:
    """Structured artifact data for this experiment."""
    by_month: Dict[date, Dict[str, int]]

    def series(self, kind: str) -> Dict[date, int]:
        """One exclusion class as a month series."""
        return {month: counts.get(kind, 0) for month, counts in self.by_month.items()}

    def total_missing(self, month: date) -> int:
        """Partial + not-archived + outdated for a month."""
        counts = self.by_month.get(month, {})
        return counts.get("partial", 0) + counts.get("not_archived", 0) + counts.get("outdated", 0)


def run(ctx: ExperimentContext) -> Fig5Result:
    """Compute this experiment's artifact from the shared context."""
    return Fig5Result(by_month=missing_snapshot_series(ctx.crawl))


def render(result: Fig5Result, every: int = 4, charts: bool = True) -> str:
    """Render the artifact as paper-style text."""
    chart = ""
    if charts:
        from ..analysis.charts import line_chart

        chart = line_chart(
            {
                kind: result.series(key)
                for kind, key in (
                    ("partial", "partial"),
                    ("not archived", "not_archived"),
                    ("outdated", "outdated"),
                )
            },
            title="Figure 5: websites excluded from analysis",
        ) + "\n\n"
    months = sorted(result.by_month)
    headers = ["month", "partial", "not archived", "outdated", "total missing"]
    rows = []
    for index, month in enumerate(months):
        if index % every and index != len(months) - 1:
            continue
        counts = result.by_month[month]
        rows.append(
            [
                month.isoformat()[:7],
                counts.get("partial", 0),
                counts.get("not_archived", 0),
                counts.get("outdated", 0),
                result.total_missing(month),
            ]
        )
    return chart + render_table(
        headers, rows, title="Figure 5: Number of websites excluded from analysis over time"
    )


def main() -> None:  # pragma: no cover
    """CLI entry point: run at the REPRO_SCALE context and print."""
    from .context import shared_context

    print(render(run(shared_context())))


if __name__ == "__main__":  # pragma: no cover
    main()
