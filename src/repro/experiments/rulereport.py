""""Filter the filters" — rule-level hit/cost report over the §4 replay.

The paper treats filter lists as the measurement instrument; this driver
turns the instrument on itself. It enables the rule-stats plane
(:mod:`repro.analysis.rulestats`), drives the §4.2 coverage replay and
the §4.3 live crawl so every matcher call is accounted, then joins the
accumulated per-rule hits/checks with the list histories into a report:
dead-rule fraction over revisions, the top hot rules, the candidate-check
cost of rules that never fire, and cross-list rule overlap.

When ``REPRO_RULE_STATS_DIR`` points at an accumulator directory, stats
stored there by previous runs are folded in, so the report can aggregate
a multi-invocation campaign. The rendered artifact embeds the canonical
(timing-free) JSON payload, which is byte-identical across serial and
parallel runs.
"""

from __future__ import annotations

from ..analysis.rulestats import (
    RuleReport,
    RuleStatsCollector,
    RuleStatsStore,
    build_rule_report,
    get_rule_stats,
    set_rule_stats,
)
from ..obs.config import rule_stats_dir
from .context import ExperimentContext

#: Artifact-graph declaration: the report joins the replay's stats with
#: the list histories. Volatile when a cross-run accumulator directory
#: is configured — the output then depends on state outside the graph.
GRAPH_DEPS = ("coverage", "live", "lists")
GRAPH_CODE = ("analysis", "filterlist")
GRAPH_PARAM_GROUPS = ()


def GRAPH_VOLATILE() -> bool:
    return rule_stats_dir() is not None


def run(ctx: ExperimentContext) -> RuleReport:
    """Account every matcher call of the §4 replay, then build the report."""
    collector = get_rule_stats()
    if collector is None:
        # The driver is the programmatic enable path: running `rulereport`
        # turns the plane on even without REPRO_RULE_STATS=1.
        collector = RuleStatsCollector()
        set_rule_stats(collector)
    # Drive the instrumented stages; both are cached on the context, so
    # stages an earlier experiment already materialised (with their calls
    # already accounted) are not recomputed.
    ctx.coverage
    ctx.live
    if not collector.has_data():
        # Warm-started campaign: coverage/live loaded from the run cache,
        # so no matcher call went through the collector. Re-drive the
        # instrumented replay explicitly — the results are discarded, the
        # accounting is the point. (The crawl itself still warm-starts.)
        from ..analysis.livecrawl import LiveCrawler

        ctx.analyzer.analyze(ctx.crawl)
        LiveCrawler(ctx.world, ctx.histories).crawl(resilience=ctx.resilience)
    payload = collector.as_payload()
    store_dir = rule_stats_dir()
    if store_dir is not None:
        stored = RuleStatsStore(store_dir).load_merged()
        if stored.get("lists"):
            merged = RuleStatsCollector()
            merged.merge_payload(stored)
            merged.merge_payload(payload)
            payload = merged.as_payload()
    return build_rule_report(payload, ctx.histories)


def render(result: RuleReport) -> str:
    """Render the artifact (deterministic text + canonical JSON)."""
    return result.render()
