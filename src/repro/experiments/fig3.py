"""Figure 3 — CDF of addition-time differences for overlapping domains.

For the domains both lists target, the distribution of
``date(Combined EasyList) − date(Anti-Adblock Killer)`` in days; the
paper's finding is a left-heavy CDF (the Combined EasyList is usually
first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..analysis.comparison import cdf, overlap_analysis
from ..analysis.histfold import run_folds
from ..analysis.report import render_cdf
from .context import ExperimentContext

#: Artifact-graph declaration: upstream stage nodes, extra code
#: scopes beyond this driver's own module file, and which campaign
#: parameter groups enter the node key directly.
GRAPH_DEPS = ("lists",)
GRAPH_CODE = ("analysis", "filterlist")
GRAPH_PARAM_GROUPS = ()


@dataclass
class Fig3Result:
    """Structured artifact data for this experiment."""
    differences_days: List[int]
    cdf_points: List[Tuple[int, float]]


def _overlap_fold(histories):
    """The two lists' first-appearance comparison (one traced fold)."""
    combined, aak = histories
    return overlap_analysis(combined, aak)


def run(ctx: ExperimentContext) -> Fig3Result:
    """Compute this experiment's artifact from the shared context.

    One fold over both histories' memoized first-appearance maps, run
    through the history-fold harness for its span + ``history.*``
    counter telemetry.
    """
    (overlap,) = run_folds(
        [
            (
                "fig3:overlap",
                _overlap_fold,
                (ctx.lists["combined_easylist"], ctx.lists["aak"]),
            )
        ]
    )
    return Fig3Result(
        differences_days=overlap.differences_days,
        cdf_points=cdf(overlap.differences_days),
    )


def render(result: Fig3Result) -> str:
    """Render the artifact as paper-style text."""
    title = (
        "Figure 3: CDF of time difference (days) between Combined EasyList and\n"
        "Anti-Adblock Killer additions for overlapping domains "
        f"(n={len(result.differences_days)}; negative = EasyList first)"
    )
    return render_cdf(result.cdf_points, title=title)


def main() -> None:  # pragma: no cover
    """CLI entry point: run at the REPRO_SCALE context and print."""
    from .context import shared_context

    print(render(run(shared_context())))


if __name__ == "__main__":  # pragma: no cover
    main()
