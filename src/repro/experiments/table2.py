"""Table 2 — example features extracted from BlockAdBlock JavaScript.

Runs the §5 feature extractor over a BlockAdBlock-style script and shows
``context:text`` features with the feature sets (all / literal / keyword)
each belongs to, as in the paper's Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import numpy as np

from ..analysis.report import render_table
from ..core.featstore import get_feature_store
from ..obs.trace import span as trace_span
from ..synthesis.scripts import html_bait_script
from .context import ExperimentContext

#: Artifact-graph declaration: upstream stage nodes, extra code
#: scopes beyond this driver's own module file, and which campaign
#: parameter groups enter the node key directly.
GRAPH_DEPS = ()
GRAPH_CODE = ("core", "jsast", "synthesis")
GRAPH_PARAM_GROUPS = ("world",)

#: Feature texts Table 2 highlights.
HIGHLIGHTED_TEXTS = (
    "BlockAdBlock",
    "_creatBait",
    "_checkBait",
    "abp",
    "0",
    "hidden",
    "clientHeight",
    "clientWidth",
    "offsetHeight",
    "offsetWidth",
)


@dataclass
class Table2Result:
    """Structured artifact data for this experiment."""
    script: str
    #: feature string -> set of feature-set names containing it
    memberships: Dict[str, Set[str]]

    def rows(self) -> List[Tuple[str, str]]:
        """The highlighted feature rows with their set memberships."""
        picked: List[Tuple[str, str]] = []
        for feature, sets in sorted(self.memberships.items()):
            text = feature.split(":", 1)[1]
            if any(text == highlight for highlight in HIGHLIGHTED_TEXTS):
                picked.append((feature, ", ".join(sorted(sets))))
        return picked


def run(ctx: ExperimentContext) -> Table2Result:
    """Compute this experiment's artifact from the shared context."""
    rng = np.random.default_rng(ctx.world.seed)
    script = html_bait_script(rng, constructor="BlockAdBlock")
    memberships: Dict[str, Set[str]] = {}
    with trace_span("table2:features", script_bytes=len(script)) as extract_span:
        # One extraction pass through the shared store: the script is
        # parsed once, each feature set is a filter over cached events
        # (and, with REPRO_DATA_PLANE=1, the events round-trip the
        # packed on-disk cache).
        by_set = get_feature_store().features_by_set(
            [script], feature_sets=("all", "literal", "keyword")
        )
        for feature_set, (features,) in by_set.items():
            extract_span.count("feature_sets")
            for feature in features:
                memberships.setdefault(feature, set()).add(feature_set)
    return Table2Result(script=script, memberships=memberships)


def render(result: Table2Result) -> str:
    """Render the artifact as paper-style text."""
    rows = result.rows()
    return render_table(
        ["Feature", "Types"],
        rows,
        title="Table 2: Features extracted from BlockAdBlock JavaScript",
    )


def main() -> None:  # pragma: no cover
    """CLI entry point: run at the REPRO_SCALE context and print."""
    from .context import shared_context

    print(render(run(shared_context())))


if __name__ == "__main__":  # pragma: no cover
    main()
