"""Table 1 — distribution of filter-list domains across Alexa rankings."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..analysis.comparison import RankDistribution, rank_distribution
from ..analysis.histfold import run_folds
from ..analysis.report import render_table
from ..synthesis.alexa import RANK_BUCKETS
from .context import AAK, CE, ExperimentContext

#: Artifact-graph declaration: upstream stage nodes, extra code
#: scopes beyond this driver's own module file, and which campaign
#: parameter groups enter the node key directly.
GRAPH_DEPS = ("lists",)
GRAPH_CODE = ("analysis", "filterlist", "synthesis")
GRAPH_PARAM_GROUPS = ("world",)


@dataclass
class Table1Result:
    """Structured artifact data for this experiment."""
    distributions: Dict[str, RankDistribution]

    def row(self, bucket: str) -> Dict[str, int]:
        """Both lists' domain counts for one rank bucket."""
        return {
            name: distribution.counts.get(bucket, 0)
            for name, distribution in self.distributions.items()
        }


def _rank_fold(args) -> RankDistribution:
    """One list's rank-bucket distribution (an independent history fold)."""
    history, population = args
    return rank_distribution(history, population)


def run(ctx: ExperimentContext) -> Table1Result:
    """Compute this experiment's artifact from the shared context.

    The two lists' distributions are independent folds sharded under
    ``REPRO_WORKERS``; job order fixes the merge order, so the rendered
    table is byte-identical serial or parallel.
    """
    population = ctx.world.population
    aak_dist, ce_dist = run_folds(
        [
            (f"table1:{AAK}", _rank_fold, (ctx.lists["aak"], population)),
            (f"table1:{CE}", _rank_fold, (ctx.lists["combined_easylist"], population)),
        ]
    )
    return Table1Result(distributions={AAK: aak_dist, CE: ce_dist})


def render(result: Table1Result) -> str:
    """Render the artifact as paper-style text."""
    headers = ["Alexa Rank", f"{AAK} List", CE]
    rows = []
    for bucket, _, _ in RANK_BUCKETS:
        row = result.row(bucket)
        rows.append([bucket, row[AAK], row[CE]])
    totals = {name: d.total for name, d in result.distributions.items()}
    rows.append(["total", totals[AAK], totals[CE]])
    return render_table(
        headers, rows, title="Table 1: Distribution of domains in filter lists across Alexa rankings"
    )


def main() -> None:  # pragma: no cover
    """CLI entry point: run at the REPRO_SCALE context and print."""
    from .context import shared_context

    print(render(run(shared_context())))


if __name__ == "__main__":  # pragma: no cover
    main()
