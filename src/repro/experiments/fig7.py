"""Figure 7 — delay between anti-adblock deployment and rule addition.

For each website with an observed anti-adblocker, the days between its
first appearance and the first revision of each list carrying a matching
rule (negative = a generic rule already covered it). Shapes to reproduce:
the Combined EasyList's CDF sits far above AAK's (more prompt), with
substantial mass below zero for both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..analysis.comparison import cdf
from ..analysis.report import render_cdf
from .context import AAK, CE, ExperimentContext

#: Artifact-graph declaration: upstream stage nodes, extra code
#: scopes beyond this driver's own module file, and which campaign
#: parameter groups enter the node key directly.
GRAPH_DEPS = ("crawl", "coverage", "lists")
GRAPH_CODE = ("analysis", "filterlist")
GRAPH_PARAM_GROUPS = ()


@dataclass
class Fig7Result:
    """Structured artifact data for this experiment."""
    delays: Dict[str, List[int]]
    cdf_points: Dict[str, List[Tuple[int, float]]]

    def fraction_before(self, name: str) -> float:
        """Share of delays below zero (rule predated the site)."""
        values = self.delays.get(name, [])
        return float(np.mean(np.asarray(values) < 0)) if values else 0.0

    def fraction_within(self, name: str, days: int = 100) -> float:
        """Share of delays at or below the given number of days."""
        values = self.delays.get(name, [])
        return float(np.mean(np.asarray(values) <= days)) if values else 0.0


def run(ctx: ExperimentContext) -> Fig7Result:
    """Compute this experiment's artifact from the shared context."""
    delays = ctx.analyzer.detection_delays(ctx.crawl, ctx.coverage)
    return Fig7Result(
        delays=delays,
        cdf_points={name: cdf(values) for name, values in delays.items()},
    )


def render(result: Fig7Result, charts: bool = True) -> str:
    """Render the artifact as paper-style text."""
    parts = []
    for name in (CE, AAK):
        points = result.cdf_points.get(name, [])
        if charts and points:
            from ..analysis.charts import cdf_chart

            parts.append(cdf_chart(points, title=f"Figure 7 ({name})"))
        parts.append(
            render_cdf(
                points,
                title=(
                    f"Figure 7 ({name}): CDF of rule-addition delay "
                    f"(n={len(result.delays.get(name, []))})"
                ),
            )
        )
        parts.append(
            f"  rules present before deployment: {result.fraction_before(name):.0%}; "
            f"rules within 100 days: {result.fraction_within(name):.0%}"
        )
    return "\n".join(parts)


def main() -> None:  # pragma: no cover
    """CLI entry point: run at the REPRO_SCALE context and print."""
    from .context import shared_context

    print(render(run(shared_context())))


if __name__ == "__main__":  # pragma: no cover
    main()
