"""Experiment drivers — one module per paper table/figure.

Each module exposes ``run(ctx) -> result`` and ``render(result) -> str``;
``python -m repro.experiments.<name>`` prints the artifact at the scale
given by the ``REPRO_SCALE`` environment variable.

| Module     | Paper artifact                                         |
|------------|--------------------------------------------------------|
| fig1       | Figure 1(a,b,c) + §3.2 composition stats               |
| table1     | Table 1 (domains per Alexa rank bucket)                |
| fig2       | Figure 2 (domain categories)                           |
| sec33      | §3.3 overlap / exception-ratio accounting              |
| fig3       | Figure 3 (addition-time difference CDF)                |
| fig5       | Figure 5 (missing snapshots per month)                 |
| fig6       | Figure 6(a,b) (sites triggering HTTP/HTML rules)       |
| fig7       | Figure 7 (rule-addition delay CDF)                     |
| sec43      | §4.3 live-web coverage                                 |
| table2     | Table 2 (example BlockAdBlock features)                |
| table3     | Table 3 (TP/FP across feature sets & classifiers)      |
| sec5live   | §5 live test (TP on live-crawl scripts)                |
| rulereport | "filter the filters": per-rule hit/cost accounting     |
"""

from .context import AAK, CE, ExperimentContext, default_scale, shared_context

__all__ = ["AAK", "CE", "ExperimentContext", "default_scale", "shared_context"]
