"""Cross-validation and the paper's evaluation metrics.

§5 reports 10-fold cross-validated **TP rate** (fraction of anti-adblock
scripts correctly classified) and **FP rate** (fraction of benign scripts
incorrectly classified).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Sequence, Tuple

import numpy as np


@dataclass
class Metrics:
    """TP/FP rates plus supporting counts."""

    tp_rate: float
    fp_rate: float
    true_positives: int = 0
    false_negatives: int = 0
    false_positives: int = 0
    true_negatives: int = 0

    @property
    def accuracy(self) -> float:
        """Overall fraction of correct predictions."""
        total = (
            self.true_positives
            + self.false_negatives
            + self.false_positives
            + self.true_negatives
        )
        if total == 0:
            return 0.0
        return (self.true_positives + self.true_negatives) / total


def compute_metrics(y_true: np.ndarray, y_pred: np.ndarray) -> Metrics:
    """TP rate (recall on positives) and FP rate (fall-out on negatives)."""
    y_true = np.asarray(y_true).ravel().astype(bool)
    y_pred = np.asarray(y_pred).ravel().astype(bool)
    tp = int(np.sum(y_true & y_pred))
    fn = int(np.sum(y_true & ~y_pred))
    fp = int(np.sum(~y_true & y_pred))
    tn = int(np.sum(~y_true & ~y_pred))
    tp_rate = tp / (tp + fn) if (tp + fn) else 0.0
    fp_rate = fp / (fp + tn) if (fp + tn) else 0.0
    return Metrics(
        tp_rate=tp_rate,
        fp_rate=fp_rate,
        true_positives=tp,
        false_negatives=fn,
        false_positives=fp,
        true_negatives=tn,
    )


def stratified_folds(
    labels: Sequence[int], n_folds: int = 10, seed: int = 0
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (train_indices, test_indices) with per-class balance.

    Each class's samples are shuffled and dealt round-robin into folds, so
    every fold holds roughly ``1/n_folds`` of each class — important given
    the 10:1 imbalance of the corpus.
    """
    labels = np.asarray(labels).ravel()
    rng = np.random.default_rng(seed)
    fold_assignment = np.zeros(len(labels), dtype=int)
    for value in np.unique(labels):
        indices = np.flatnonzero(labels == value)
        rng.shuffle(indices)
        for position, index in enumerate(indices):
            fold_assignment[index] = position % n_folds
    for fold in range(n_folds):
        test = np.flatnonzero(fold_assignment == fold)
        train = np.flatnonzero(fold_assignment != fold)
        if len(test) == 0:
            continue
        yield train, test


def cross_validate(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    n_folds: int = 10,
    seed: int = 0,
) -> Metrics:
    """Pooled k-fold metrics: train on k-1 folds, score the held-out fold.

    Predictions from all folds are pooled before computing TP/FP rates
    (equivalent to the paper's "repeat this process 10 times" protocol).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).ravel().astype(np.int8)
    predictions = np.zeros_like(y)
    for train, test in stratified_folds(y, n_folds=n_folds, seed=seed):
        model = model_factory()
        model.fit(X[train], y[train])
        predictions[test] = np.asarray(model.predict(X[test])).ravel()
    return compute_metrics(y, predictions)


def cross_validate_per_fold(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    n_folds: int = 10,
    seed: int = 0,
) -> List[Metrics]:
    """Per-fold metrics, for variance inspection."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).ravel().astype(np.int8)
    out: List[Metrics] = []
    for train, test in stratified_folds(y, n_folds=n_folds, seed=seed):
        model = model_factory()
        model.fit(X[train], y[train])
        predicted = np.asarray(model.predict(X[test])).ravel()
        out.append(compute_metrics(y[test], predicted))
    return out
