"""The §5 feature-extraction engine: parse once, derive cheaply, cache hard.

Table 3 alone evaluates 18 detector configurations, and before this
engine each one re-tokenized, re-parsed, and re-unpacked the entire
script corpus even though every feature set (*all*/*literal*/*keyword*)
derives from the same AST. Following the paper's own pipeline (Fig. 8)
and prior static detectors (Zozzle, Revolver), the cacheable unit here is
the per-script **token event stream** (:func:`~repro.core.features.token_events`):
a feature-set-agnostic intermediate from which any feature set falls out
by kind-filtering. Three layers keep extraction off the hot path:

1. **In-process memo** — events are content-addressed by
   ``(sha256(source), unpack)``, so duplicate scripts and repeated
   extractions (every Table 3 configuration, the detector's fit/predict
   round trips, sec5live after table3) collapse to at most one parse per
   distinct script per unpack flag.
2. **Process pool** — cache misses shard across the fork-based
   ``REPRO_WORKERS`` pool (the same machinery as the §4 replay,
   :mod:`repro.analysis.pool`), with a contiguous-shard merge that makes
   the parallel result byte-identical to the serial one.
3. **On-disk cache** — with ``REPRO_FEATURE_CACHE=<dir>`` set, events
   persist keyed by ``(sha256(source), EXTRACTOR_VERSION, unpack)``, so
   repeated CLI runs, benchmarks, and CI jobs hit warm entries instead
   of re-parsing. The format is one JSON file per script by default, or
   packed mmap-able event segments (:mod:`repro.dataplane.events`) under
   ``REPRO_DATA_PLANE=1`` — same keys, same canonicalised entries, so
   the two formats produce pickle-identical results. Bump
   :data:`EXTRACTOR_VERSION` whenever extraction semantics change —
   stale entries are invalidated by key.

Per-script failures are not silent: parse errors and unpack bailouts
surface as ``features.parse_errors`` / ``features.unpack_bailouts``
counters in the unified metrics registry (and in :class:`StoreStats`).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..analysis.perf import LRUCache
from ..analysis.pool import get_persistent_pool, map_shards, split_shards
from ..dataplane.events import PackedEventCache
from ..dataplane.sources import SourceTable, write_source_table
from ..jsast.parser import ParseError, parse
from ..jsast.tokenizer import TokenizeError
from ..jsast.unpack import unpack_program
from ..obs.config import data_plane_enabled, feature_cache_dir, repro_workers
from ..obs.metrics import get_metrics
from ..obs.trace import span as trace_span
from .features import FEATURE_SETS, TokenEvent, features_from_events, token_events

#: Version of the extraction semantics baked into cached event streams.
#: Part of every cache key: bumping it orphans (never corrupts) old disk
#: entries, which is the whole invalidation story.
EXTRACTOR_VERSION = 1


@dataclass(frozen=True)
class ScriptEvents:
    """The cached intermediate for one script × unpack flag."""

    events: Tuple[TokenEvent, ...]
    #: the script failed to parse; ``events`` is empty (the §5 corpus
    #: convention: unparseable scripts contribute no features)
    parse_error: bool = False
    #: unpacking gave up on a dynamic payload or hit the round cap;
    #: features come from the partially unpacked tree
    unpack_bailout: bool = False

    def features(self, feature_set: str = "all") -> Set[str]:
        """Derive one feature set from the event stream."""
        return features_from_events(self.events, feature_set)


@dataclass
class StoreStats:
    """Counters for one store's lifetime (mirrored into ``features.*``)."""

    #: scripts actually parsed/unpacked/walked (cache misses)
    extracted: int = 0
    #: lookups answered by the in-process memo (incl. duplicate sources)
    memo_hits: int = 0
    #: lookups answered by the on-disk cache
    disk_hits: int = 0
    #: event streams persisted to the on-disk cache
    disk_writes: int = 0
    #: scripts that failed to parse (ParseError/TokenizeError)
    parse_errors: int = 0
    #: scripts whose unpacking bailed out (unparseable payload/round cap)
    unpack_bailouts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def source_digest(source: str) -> str:
    """SHA-256 hex digest of a script source (the content address)."""
    return hashlib.sha256(source.encode("utf-8", "replace")).hexdigest()


def extract_events(source: str, unpack: bool = True) -> ScriptEvents:
    """Parse (and optionally unpack) one script into its event stream."""
    try:
        program = parse(source)
    except (ParseError, TokenizeError):
        return ScriptEvents(events=(), parse_error=True)
    bailout = False
    if unpack:
        result = unpack_program(program)
        program = result.program
        bailout = result.bailed_out
    return ScriptEvents(events=tuple(token_events(program)), unpack_bailout=bailout)


# -- worker-shard task (module level for pickling) -------------------------------


def _extract_shard(_state, shard: List[str], unpack: bool):
    """Extract one shard of sources; returns (entries, span payload)."""
    wall0, cpu0 = time.perf_counter(), time.process_time()
    entries = [extract_events(source, unpack) for source in shard]
    payload = {
        "wall_s": time.perf_counter() - wall0,
        "cpu_s": time.process_time() - cpu0,
        "scripts": len(entries),
    }
    return entries, payload


def _extract_range_task(_state, bounds: Tuple[str, int, int], unpack: bool):
    """Persistent-pool task: extract one index range of a source table.

    The payload is ``(table path, lo, hi)`` — the worker maps the table
    and decodes only its own slice, so no script source crosses the
    process boundary as a pickle.
    """
    path, lo, hi = bounds
    wall0, cpu0 = time.perf_counter(), time.process_time()
    with SourceTable(path) as table:
        entries = [extract_events(table.get(i), unpack) for i in range(lo, hi)]
    payload = {
        "wall_s": time.perf_counter() - wall0,
        "cpu_s": time.process_time() - cpu0,
        "scripts": len(entries),
    }
    return entries, payload


class FeatureStore:
    """Content-addressed, parallel, disk-backed token-event store."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        memo_capacity: int = 16384,
        intern_limit: int = 1 << 20,
        packed: Optional[bool] = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else None
        # Disk-cache format: packed mmap-able event segments
        # (repro.dataplane) when ``packed`` — defaulting to the
        # REPRO_DATA_PLANE knob — else one JSON file per script. Entries
        # loaded through either format canonicalise identically.
        self.packed = data_plane_enabled() if packed is None else bool(packed)
        self._packed_cache: Optional[PackedEventCache] = None
        self._memo = LRUCache(memo_capacity)
        self.stats = StoreStats()
        # Interning tables: every entry (freshly extracted, unpickled from
        # a worker, or loaded from disk) is canonicalised through these, so
        # equal strings/context tuples are one shared object per store and
        # serial / parallel / warm-cache assemblies pickle byte-identically.
        # Bounded: past ``intern_limit`` distinct strings the tables are
        # rebuilt from the live memo entries, so evicted entries' strings
        # do not accumulate for the store's (process-long) lifetime.
        self._intern_limit = max(int(intern_limit), 1)
        self._strings: Dict[str, str] = {}
        self._context_tuples: Dict[Tuple[str, ...], Tuple[str, ...]] = {}

    # -- accounting ---------------------------------------------------------

    def _count(self, name: str, delta: int = 1) -> None:
        if delta:
            setattr(self.stats, name, getattr(self.stats, name) + delta)
            get_metrics().count(f"features.{name}", delta)

    # -- canonicalisation ---------------------------------------------------

    def _intern(self, text: str) -> str:
        return self._strings.setdefault(text, text)

    def _canonical_contexts(self, contexts: Tuple[str, ...]) -> Tuple[str, ...]:
        cached = self._context_tuples.get(contexts)
        if cached is None:
            # Store a tuple of *interned* strings, so equal values share
            # objects no matter which path (fresh/worker/disk) built them.
            cached = tuple(self._intern(context) for context in contexts)
            self._context_tuples[cached] = cached
        return cached

    def _canonical(self, entry: ScriptEvents) -> ScriptEvents:
        events = tuple(
            (
                self._intern(kind),
                self._intern(text),
                self._canonical_contexts(contexts),
            )
            for kind, text, contexts in entry.events
        )
        return ScriptEvents(
            events=events,
            parse_error=entry.parse_error,
            unpack_bailout=entry.unpack_bailout,
        )

    # -- the on-disk cache --------------------------------------------------

    def _entry_path(self, digest: str, unpack: bool) -> Path:
        suffix = "u1" if unpack else "u0"
        return (
            self.cache_dir
            / f"v{EXTRACTOR_VERSION}"
            / digest[:2]
            / f"{digest}.{suffix}.json"
        )

    def _packed_store(self) -> PackedEventCache:
        if self._packed_cache is None:
            # The store's interning tables plug in at the segment-decode
            # boundary, so packed-loaded entries are *born* canonical —
            # admitted without the per-event re-intern walk the JSON
            # plane needs.
            self._packed_cache = PackedEventCache(
                self.cache_dir,
                EXTRACTOR_VERSION,
                string_intern=self._intern,
                tuple_intern=self._canonical_contexts,
            )
        return self._packed_cache

    def _packed_load(self, digest: str, unpack: bool) -> Optional[ScriptEvents]:
        entry = self._packed_store().lookup(digest, unpack)
        if entry is None:
            return None
        _digest, _unpack, events, parse_error, unpack_bailout = entry
        return ScriptEvents(
            events=tuple(events),
            parse_error=parse_error,
            unpack_bailout=unpack_bailout,
        )

    def _packed_flush(self, batch: List[Tuple[str, bool, ScriptEvents]]) -> None:
        """Persist one extraction batch as a packed event segment."""
        written = self._packed_store().store(
            [
                (digest, unpack, entry.events, entry.parse_error, entry.unpack_bailout)
                for digest, unpack, entry in batch
            ]
        )
        self._count("disk_writes", written)

    def _disk_load(self, digest: str, unpack: bool) -> Optional[ScriptEvents]:
        if self.packed:
            return self._packed_load(digest, unpack)
        path = self._entry_path(digest, unpack)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("v") != EXTRACTOR_VERSION:
            return None
        try:
            events = tuple(
                (kind, text, tuple(contexts))
                for kind, text, contexts in payload["events"]
            )
            return ScriptEvents(
                events=events,
                parse_error=bool(payload["parse_error"]),
                unpack_bailout=bool(payload["unpack_bailout"]),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def _disk_store(self, digest: str, unpack: bool, entry: ScriptEvents) -> None:
        path = self._entry_path(digest, unpack)
        payload = {
            "v": EXTRACTOR_VERSION,
            "unpack": unpack,
            "parse_error": entry.parse_error,
            "unpack_bailout": entry.unpack_bailout,
            "events": [
                [kind, text, list(contexts)] for kind, text, contexts in entry.events
            ],
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
            tmp.write_text(json.dumps(payload))
            os.replace(tmp, path)  # atomic: concurrent writers race benignly
        except OSError:
            return
        self._count("disk_writes")

    # -- extraction ---------------------------------------------------------

    def events_for_corpus(
        self,
        sources: Iterable[str],
        unpack: bool = True,
        workers: Optional[int] = None,
    ) -> List[ScriptEvents]:
        """Event streams for many scripts, in input order.

        Each distinct ``(sha256(source), unpack)`` pair is resolved once —
        memo, then disk, then actual extraction (sharded across
        ``workers``/``REPRO_WORKERS`` processes when > 1). Serial,
        parallel, and warm-cache runs assemble byte-identical results.
        """
        sources = list(sources)
        workers = repro_workers() if workers is None else max(int(workers), 1)
        digests = [source_digest(source) for source in sources]
        resolved: Dict[str, ScriptEvents] = {}
        pending: Set[str] = set()
        todo: List[Tuple[str, str]] = []  # (digest, source), first-seen order
        for digest, source in zip(digests, sources):
            if digest in resolved or digest in pending:
                self._count("memo_hits")
                continue
            cached = self._memo.get((digest, unpack))
            if cached is not None:
                self._count("memo_hits")
                resolved[digest] = cached
                continue
            pending.add(digest)
            todo.append((digest, source))
        if self.cache_dir is not None and todo:
            remaining: List[Tuple[str, str]] = []
            for digest, source in todo:
                entry = self._disk_load(digest, unpack)
                if entry is None:
                    remaining.append((digest, source))
                    continue
                self._count("disk_hits")
                self._admit(digest, unpack, entry, canonical=self.packed)
                resolved[digest] = self._memo.get((digest, unpack))
            todo = remaining
        if todo:
            with trace_span(
                "features:extract", scripts=len(todo), workers=workers, unpack=unpack
            ) as span:
                if workers > 1 and len(todo) > 1:
                    entries = self._extract_parallel(todo, unpack, workers, span)
                else:
                    entries = [extract_events(source, unpack) for _, source in todo]
                packed_batch: List[Tuple[str, bool, ScriptEvents]] = []
                for (digest, _source), entry in zip(todo, entries):
                    self._count("extracted")
                    self._count("parse_errors", int(entry.parse_error))
                    self._count("unpack_bailouts", int(entry.unpack_bailout))
                    self._admit(digest, unpack, entry)
                    resolved[digest] = self._memo.get((digest, unpack))
                    if self.cache_dir is not None:
                        if self.packed:
                            packed_batch.append((digest, unpack, resolved[digest]))
                        else:
                            self._disk_store(digest, unpack, resolved[digest])
                if packed_batch:
                    self._packed_flush(packed_batch)
        return [resolved[digest] for digest in digests]

    def _admit(
        self, digest: str, unpack: bool, entry: ScriptEvents, canonical: bool = False
    ) -> None:
        """Memoise an entry; ``canonical=True`` skips the re-intern walk.

        Only packed-plane disk loads may claim ``canonical`` — their
        strings and context tuples were interned through this store's
        tables at segment-decode time, so re-walking them would rebuild
        identical objects.
        """
        self._memo.put(
            (digest, unpack), entry if canonical else self._canonical(entry)
        )
        if len(self._strings) > self._intern_limit:
            self._rebuild_intern_tables()

    def _rebuild_intern_tables(self) -> None:
        """Re-intern only what live memo entries still reference.

        Live entries are already canonical, so ``setdefault`` re-inserts
        their existing objects — sharing (and pickle byte-identity) is
        preserved — while strings that only evicted entries referenced
        become collectable. Rebuild points depend solely on the admission
        sequence, which is identical across serial, parallel, and
        warm-cache assemblies.
        """
        self._strings = {}
        self._context_tuples = {}
        for entry in self._memo.values():
            for kind, text, contexts in entry.events:
                self._strings.setdefault(kind, kind)
                self._strings.setdefault(text, text)
                if contexts not in self._context_tuples:
                    self._context_tuples[contexts] = contexts
                    for context in contexts:
                        self._strings.setdefault(context, context)

    def _extract_parallel(
        self, todo: List[Tuple[str, str]], unpack: bool, workers: int, span
    ) -> List[ScriptEvents]:
        """Shard the miss list across the fork-first process pool."""
        shards = split_shards([[source] for _, source in todo], workers)
        if len(shards) <= 1:
            return [extract_events(source, unpack) for _, source in todo]
        span.set(shards=len(shards))
        results = self._extract_persistent(shards, unpack)
        if results is None:
            results = map_shards(shards, _extract_shard, extra=(unpack,))
        entries: List[ScriptEvents] = []
        for index, (shard_entries, payload) in enumerate(results):
            span.add_child_payload(f"shard:{index}", **payload)
            entries.extend(shard_entries)
        return entries

    def _extract_persistent(self, shards: List[List[str]], unpack: bool):
        """Fan extraction out over the persistent pool, if one is live.

        The miss list is written once as a packed source table; payloads
        are ``(path, lo, hi)`` index ranges into it, so the fan-out ships
        no sources and the per-run pool setup cost disappears. Returns
        ``None`` (caller falls back to :func:`map_shards`) when no
        persistent pool exists.
        """
        pool = get_persistent_pool()
        if pool is None:
            return None
        import shutil
        import tempfile

        tmpdir = tempfile.mkdtemp(prefix="repro-sources-")
        try:
            path = os.path.join(tmpdir, "sources.rdps")
            write_source_table(path, [source for shard in shards for source in shard])
            bounds = []
            lo = 0
            for shard in shards:
                bounds.append((path, lo, lo + len(shard)))
                lo += len(shard)
            return pool.run(_extract_range_task, bounds, extra=(unpack,))
        finally:
            shutil.rmtree(tmpdir, ignore_errors=True)

    # -- feature-set derivation ---------------------------------------------

    def features_for_corpus(
        self,
        sources: Iterable[str],
        feature_set: str = "all",
        unpack: bool = True,
        workers: Optional[int] = None,
    ) -> List[Set[str]]:
        """One feature set per script (unparseable scripts yield empty sets)."""
        return [
            entry.features(feature_set)
            for entry in self.events_for_corpus(sources, unpack, workers)
        ]

    def features_by_set(
        self,
        sources: Iterable[str],
        feature_sets: Sequence[str] = FEATURE_SETS,
        unpack: bool = True,
        workers: Optional[int] = None,
    ) -> Dict[str, List[Set[str]]]:
        """Every requested feature set from one extraction pass."""
        entries = self.events_for_corpus(sources, unpack, workers)
        return {
            feature_set: [entry.features(feature_set) for entry in entries]
            for feature_set in feature_sets
        }


# -- the process-wide store -------------------------------------------------------

_STORE: Optional[FeatureStore] = None


def get_feature_store() -> FeatureStore:
    """The shared store (created on first use from ``REPRO_FEATURE_CACHE``).

    Process-wide by design: every caller — each Table 3 configuration,
    the detector's fit/predict, sec5live after table3 in the same CLI
    invocation — shares one memo, so no (script, unpack) pair is ever
    extracted twice in a process.
    """
    global _STORE
    if _STORE is None:
        _STORE = FeatureStore(cache_dir=feature_cache_dir())
    return _STORE


def set_feature_store(store: Optional[FeatureStore]) -> Optional[FeatureStore]:
    """Swap the shared store (tests); returns the previous one."""
    global _STORE
    previous, _STORE = _STORE, store
    return previous
