"""End-to-end anti-adblock script detector (Figure 8).

``unpack JS → build AST → extract context:text features → vectorize with
variance/duplicate/chi-square filtering → AdaBoost+SVM``. The detector
object carries the fitted feature space and classifier so it can score
previously unseen scripts (the paper's offline filter-list-author and
online in-adblocker scenarios).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .adaboost import AdaBoostClassifier
from .crossval import Metrics, compute_metrics
from .features import features_for_corpus
from .svm import SVC
from .vectorize import Vectorizer, VectorizerReport


def make_classifier(kind: str = "adaboost_svm", seed: int = 0) -> object:
    """Classifier factory for the configurations evaluated in Table 3."""
    if kind == "adaboost_svm":
        return AdaBoostClassifier(
            base_factory=lambda: SVC(kernel="rbf", C=5.0, max_iter=60, seed=seed),
            n_estimators=8,
            seed=seed,
        )
    if kind == "svm":
        return SVC(kernel="rbf", C=5.0, max_iter=120, seed=seed)
    if kind == "linear_svm":
        return SVC(kernel="linear", C=1.0, max_iter=120, seed=seed)
    if kind == "adaboost_stump":
        from .adaboost import DecisionStump

        return AdaBoostClassifier(
            base_factory=DecisionStump, n_estimators=40, seed=seed
        )
    raise ValueError(f"unknown classifier kind {kind!r}")


@dataclass
class DetectorConfig:
    """Configuration axis of Table 3."""

    feature_set: str = "keyword"
    top_k: Optional[int] = 1000
    classifier: str = "adaboost_svm"
    unpack: bool = True
    seed: int = 0


class AntiAdblockDetector:
    """The trained detector: fit on a labeled corpus, score new scripts."""

    def __init__(self, config: Optional[DetectorConfig] = None, **kwargs) -> None:
        if config is None:
            config = DetectorConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a config object or keyword arguments")
        self.config = config
        self.vectorizer = Vectorizer(top_k=config.top_k)
        self.model: Optional[object] = None

    # -- training ----------------------------------------------------------------

    def fit(self, sources: Sequence[str], labels: Sequence[int]) -> "AntiAdblockDetector":
        """Extract features, fit the vectorizer, train the classifier."""
        features = features_for_corpus(
            sources, feature_set=self.config.feature_set, unpack=self.config.unpack
        )
        X = self.vectorizer.fit_transform(features, labels)
        self.model = make_classifier(self.config.classifier, seed=self.config.seed)
        self.model.fit(X, np.asarray(labels, dtype=np.int8))
        return self

    # -- inference ---------------------------------------------------------------

    def _vectorize(self, sources: Sequence[str]) -> np.ndarray:
        features = features_for_corpus(
            sources, feature_set=self.config.feature_set, unpack=self.config.unpack
        )
        return self.vectorizer.transform(features)

    def predict(self, sources: Sequence[str]) -> np.ndarray:
        """1 for anti-adblock, 0 for benign, per script."""
        if self.model is None:
            raise RuntimeError("AntiAdblockDetector.fit must run first")
        return np.asarray(self.model.predict(self._vectorize(sources))).ravel()

    def score(self, sources: Sequence[str], labels: Sequence[int]) -> Metrics:
        """TP/FP rates on a held-out labeled set."""
        return compute_metrics(np.asarray(labels), self.predict(sources))

    @property
    def report(self) -> VectorizerReport:
        """Feature counts after each vectorizer filtering stage."""
        return self.vectorizer.report


def evaluate_detector(
    sources: Sequence[str],
    labels: Sequence[int],
    config: Optional[DetectorConfig] = None,
    n_folds: int = 10,
    **kwargs,
) -> Metrics:
    """10-fold cross-validated TP/FP rates for one Table 3 configuration.

    Feature extraction runs once; the vectorizer and classifier are
    re-fitted inside every fold (only on that fold's training scripts), so
    feature selection never sees test labels.
    """
    if config is None:
        config = DetectorConfig(**kwargs)
    features = features_for_corpus(
        sources, feature_set=config.feature_set, unpack=config.unpack
    )
    labels_array = np.asarray(labels, dtype=np.int8)

    from .crossval import stratified_folds

    predictions = np.zeros_like(labels_array)
    for train, test in stratified_folds(labels_array, n_folds=n_folds, seed=config.seed):
        vectorizer = Vectorizer(top_k=config.top_k)
        train_features = [features[i] for i in train]
        X_train = vectorizer.fit_transform(train_features, labels_array[train])
        model = make_classifier(config.classifier, seed=config.seed)
        model.fit(X_train, labels_array[train])
        X_test = vectorizer.transform([features[i] for i in test])
        predictions[test] = np.asarray(model.predict(X_test)).ravel()
    return compute_metrics(labels_array, predictions)
