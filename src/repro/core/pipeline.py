"""End-to-end anti-adblock script detector (Figure 8).

``unpack JS → build AST → extract context:text features → vectorize with
variance/duplicate/chi-square filtering → AdaBoost+SVM``. The detector
object carries the fitted feature space and classifier so it can score
previously unseen scripts (the paper's offline filter-list-author and
online in-adblocker scenarios).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Set, Tuple

import numpy as np

from ..obs.metrics import get_metrics
from .adaboost import AdaBoostClassifier
from .crossval import Metrics, compute_metrics
from .features import features_for_corpus
from .svm import SVC
from .vectorize import FeatureSpace, Vectorizer, VectorizerReport


def make_classifier(kind: str = "adaboost_svm", seed: int = 0) -> object:
    """Classifier factory for the configurations evaluated in Table 3."""
    if kind == "adaboost_svm":
        return AdaBoostClassifier(
            base_factory=lambda: SVC(kernel="rbf", C=5.0, max_iter=60, seed=seed),
            n_estimators=8,
            seed=seed,
        )
    if kind == "svm":
        return SVC(kernel="rbf", C=5.0, max_iter=120, seed=seed)
    if kind == "linear_svm":
        return SVC(kernel="linear", C=1.0, max_iter=120, seed=seed)
    if kind == "adaboost_stump":
        from .adaboost import DecisionStump

        return AdaBoostClassifier(
            base_factory=DecisionStump, n_estimators=40, seed=seed
        )
    raise ValueError(f"unknown classifier kind {kind!r}")


@dataclass
class DetectorConfig:
    """Configuration axis of Table 3."""

    feature_set: str = "keyword"
    top_k: Optional[int] = 1000
    classifier: str = "adaboost_svm"
    unpack: bool = True
    seed: int = 0


class AntiAdblockDetector:
    """The trained detector: fit on a labeled corpus, score new scripts."""

    def __init__(self, config: Optional[DetectorConfig] = None, **kwargs) -> None:
        if config is None:
            config = DetectorConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a config object or keyword arguments")
        self.config = config
        self.vectorizer = Vectorizer(top_k=config.top_k)
        self.model: Optional[object] = None

    # -- training ----------------------------------------------------------------

    def fit(
        self,
        sources: Sequence[str],
        labels: Sequence[int],
        features: Optional[Sequence[Set[str]]] = None,
    ) -> "AntiAdblockDetector":
        """Extract features, fit the vectorizer, train the classifier.

        Pass precomputed ``features`` (one set per source, matching the
        detector's feature set and unpack flag) to skip extraction —
        experiments that already hold shared corpus features use this.
        """
        if features is None:
            features = features_for_corpus(
                sources, feature_set=self.config.feature_set, unpack=self.config.unpack
            )
        X = self.vectorizer.fit_transform(features, labels)
        self.model = make_classifier(self.config.classifier, seed=self.config.seed)
        self.model.fit(X, np.asarray(labels, dtype=np.int8))
        return self

    # -- inference ---------------------------------------------------------------

    def _vectorize(
        self,
        sources: Sequence[str],
        features: Optional[Sequence[Set[str]]] = None,
    ) -> np.ndarray:
        if features is None:
            features = features_for_corpus(
                sources, feature_set=self.config.feature_set, unpack=self.config.unpack
            )
        return self.vectorizer.transform(features)

    def predict(
        self,
        sources: Sequence[str],
        features: Optional[Sequence[Set[str]]] = None,
    ) -> np.ndarray:
        """1 for anti-adblock, 0 for benign, per script."""
        if self.model is None:
            raise RuntimeError("AntiAdblockDetector.fit must run first")
        return np.asarray(self.model.predict(self._vectorize(sources, features))).ravel()

    def score(
        self,
        sources: Sequence[str],
        labels: Sequence[int],
        features: Optional[Sequence[Set[str]]] = None,
    ) -> Metrics:
        """TP/FP rates on a held-out labeled set."""
        return compute_metrics(np.asarray(labels), self.predict(sources, features))

    @property
    def report(self) -> VectorizerReport:
        """Feature counts after each vectorizer filtering stage."""
        return self.vectorizer.report


#: A fitted fold: the selected space plus the filter-stage counts.
_FoldSpace = Tuple[FeatureSpace, VectorizerReport]


class EvaluationCache:
    """Fold-level memoization shared across detector configurations.

    Table 3 evaluates 18 configurations over one corpus, and whole fold
    computations repeat between them. Two observations make that cheap:

    - A fold's fitted feature space depends only on (features, labels,
      fold split, top_k) — and when the post-duplicate vocabulary is
      already ≤ top_k, the cap never fires, so *every* such top_k yields
      the same space (at default scale, top 10 000 and top 1 000 both
      select the identical uncapped vocabulary).
    - Classifier training is deterministic given (classifier kind, seed,
      training matrix), so two configurations that arrive at the same
      fold space produce bit-equal predictions — train once, replay.

    Keys are content tokens (hashes of the feature sets, label bytes and
    selected vocabularies), never object identities, so hits are exact.
    """

    def __init__(self) -> None:
        self._spaces: Dict[tuple, _FoldSpace] = {}
        #: fold key → fitted space whose selection was not truncated by
        #: top_k (reusable for any cap ≥ its post-duplicate count).
        self._uncapped: Dict[tuple, _FoldSpace] = {}
        self._predictions: Dict[tuple, np.ndarray] = {}
        self.space_hits = 0
        self.space_misses = 0
        self.prediction_hits = 0
        self.prediction_misses = 0

    def _count(self, name: str) -> None:
        setattr(self, name, getattr(self, name) + 1)
        get_metrics().count(f"pipeline.{name}")

    @staticmethod
    def features_token(features: Sequence[Set[str]]) -> str:
        """Content token for a per-script feature-set list.

        Length-prefixed: feature text derives from arbitrary (truncated)
        script tokens, so no separator byte is safe — prefixing each
        set's cardinality and each feature's byte length makes the
        encoding injective.
        """
        digest = hashlib.sha256()
        for feature_set in features:
            digest.update(len(feature_set).to_bytes(8, "big"))
            for feature in sorted(feature_set):
                encoded = feature.encode("utf-8")
                digest.update(len(encoded).to_bytes(8, "big"))
                digest.update(encoded)
        return digest.hexdigest()

    def space_for_fold(
        self,
        fold_key: tuple,
        top_k: Optional[int],
        fit: Callable[[], "Vectorizer"],
    ) -> _FoldSpace:
        """The fitted space for one fold, computing via ``fit`` on miss."""
        exact = fold_key + (top_k,)
        entry = self._spaces.get(exact)
        if entry is None and top_k is not None:
            uncapped = self._uncapped.get(fold_key)
            if uncapped is not None and uncapped[1].after_duplicates <= top_k:
                entry = uncapped
                self._spaces[exact] = entry
        if entry is not None:
            self._count("space_hits")
            return entry
        self._count("space_misses")
        vectorizer = fit()
        entry = (vectorizer.space, vectorizer.report)
        self._spaces[exact] = entry
        if top_k is None or vectorizer.report.after_duplicates <= top_k:
            self._uncapped.setdefault(fold_key, entry)
        return entry

    def predictions_for_fold(
        self,
        fold_key: tuple,
        classifier: str,
        names_token: tuple,
        compute: Callable[[], np.ndarray],
    ) -> np.ndarray:
        """One fold's test predictions, training via ``compute`` on miss."""
        key = fold_key + (classifier, names_token)
        cached = self._predictions.get(key)
        if cached is not None:
            self._count("prediction_hits")
            return cached
        self._count("prediction_misses")
        predictions = compute()
        self._predictions[key] = predictions
        return predictions


def evaluate_detector(
    sources: Sequence[str],
    labels: Sequence[int],
    config: Optional[DetectorConfig] = None,
    n_folds: int = 10,
    features: Optional[Sequence[Set[str]]] = None,
    cache: Optional[EvaluationCache] = None,
    **kwargs,
) -> Metrics:
    """10-fold cross-validated TP/FP rates for one Table 3 configuration.

    Feature extraction happens at most once per (corpus, unpack) pair —
    either passed in as precomputed ``features`` or resolved through the
    shared content-addressed feature store — and the vectorizer and
    classifier are re-fitted inside every fold (only on that fold's
    training scripts), so feature selection never sees test labels.

    A shared ``cache`` (:class:`EvaluationCache`) additionally reuses
    fitted fold spaces and fold predictions across configurations that
    provably coincide; results are bit-identical with or without it.
    """
    if config is None:
        config = DetectorConfig(**kwargs)
    if features is None:
        features = features_for_corpus(
            sources, feature_set=config.feature_set, unpack=config.unpack
        )
    if cache is None:
        cache = EvaluationCache()
    labels_array = np.asarray(labels, dtype=np.int8)

    from .crossval import stratified_folds

    corpus_key = (cache.features_token(features), labels_array.tobytes())
    predictions = np.zeros_like(labels_array)
    folds = stratified_folds(labels_array, n_folds=n_folds, seed=config.seed)
    for fold_index, (train, test) in enumerate(folds):
        fold_key = corpus_key + (n_folds, config.seed, fold_index)
        train_features = [features[i] for i in train]

        def fit_vectorizer() -> Vectorizer:
            vectorizer = Vectorizer(top_k=config.top_k)
            vectorizer.fit(train_features, labels_array[train])
            return vectorizer

        space, _report = cache.space_for_fold(fold_key, config.top_k, fit_vectorizer)

        def train_and_predict() -> np.ndarray:
            X_train = space.transform(train_features)
            model = make_classifier(config.classifier, seed=config.seed)
            model.fit(X_train, labels_array[train])
            X_test = space.transform([features[i] for i in test])
            return np.asarray(model.predict(X_test)).ravel()

        predictions[test] = cache.predictions_for_fold(
            fold_key, config.classifier, tuple(space.feature_names), train_and_predict
        )
    return compute_metrics(labels_array, predictions)
