"""The paper's §5 contribution: ML detection of anti-adblock scripts.

Static AST ``context:text`` features in three generalisation levels,
binary vectorization with variance/duplicate/chi-square filtering, a
from-scratch kernel SVM (SMO) boosted with AdaBoost, stratified k-fold
evaluation, and the end-to-end detector pipeline of Figure 8.
"""

from .adaboost import AdaBoostClassifier, DecisionStump
from .chi2 import chi_square_from_counts, chi_square_scores, top_k_features
from .corpus import Corpus, LabeledScript, build_corpus, ground_truth_corpus
from .crossval import (
    Metrics,
    compute_metrics,
    cross_validate,
    cross_validate_per_fold,
    stratified_folds,
)
from .features import (
    FEATURE_SETS,
    WEB_API_KEYWORDS,
    FeatureExtractionError,
    TokenEvent,
    extract_features,
    features_for_corpus,
    features_from_events,
    features_from_source,
    token_events,
)
from .featstore import (
    EXTRACTOR_VERSION,
    FeatureStore,
    ScriptEvents,
    extract_events,
    get_feature_store,
    set_feature_store,
)
from .online import OnlineAdblocker, OnlineVisitResult
from .pipeline import (
    AntiAdblockDetector,
    DetectorConfig,
    EvaluationCache,
    evaluate_detector,
    make_classifier,
)
from .rulegen import DetectedScript, GeneratedRules, RuleGenerator, detect_and_generate
from .signatures import DEFAULT_SIGNATURES, Signature, SignatureDetector
from .svm import SVC, linear_kernel, rbf_kernel
from .vectorize import FeatureSpace, Vectorizer, VectorizerReport

__all__ = [
    "AdaBoostClassifier",
    "DecisionStump",
    "chi_square_from_counts",
    "chi_square_scores",
    "top_k_features",
    "Corpus",
    "LabeledScript",
    "build_corpus",
    "ground_truth_corpus",
    "Metrics",
    "compute_metrics",
    "cross_validate",
    "cross_validate_per_fold",
    "stratified_folds",
    "FEATURE_SETS",
    "WEB_API_KEYWORDS",
    "FeatureExtractionError",
    "TokenEvent",
    "extract_features",
    "features_for_corpus",
    "features_from_events",
    "features_from_source",
    "token_events",
    "EXTRACTOR_VERSION",
    "FeatureStore",
    "ScriptEvents",
    "extract_events",
    "get_feature_store",
    "set_feature_store",
    "OnlineAdblocker",
    "OnlineVisitResult",
    "DetectedScript",
    "GeneratedRules",
    "RuleGenerator",
    "detect_and_generate",
    "AntiAdblockDetector",
    "DetectorConfig",
    "EvaluationCache",
    "evaluate_detector",
    "make_classifier",
    "DEFAULT_SIGNATURES",
    "Signature",
    "SignatureDetector",
    "SVC",
    "linear_kernel",
    "rbf_kernel",
    "FeatureSpace",
    "Vectorizer",
    "VectorizerReport",
]
