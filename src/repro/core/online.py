"""The §5 *online scenario*: the trained model shipped inside an adblocker.

"In the online scenario, our trained machine learning model can be
directly shipped in adblockers which would scan all scripts to detect and
remove anti-adblock scripts on the fly." This module implements that:
:class:`OnlineAdblocker` combines classic filter lists with the detector —
every script a page serves is statically scanned, and flagged external
scripts are blocked even when no filter rule knows them.

This is *not* batch-only: the same class is the per-epoch engine inside
the always-on ``repro serve`` daemon (:mod:`repro.serve`), its production
driver. The daemon constructs one :class:`OnlineAdblocker` per list
epoch (via the ``adblocker=`` / ``verdict_cache=`` hooks below, so the
memoised verdicts survive hot reloads) and answers url/page/script
queries byte-identically to calling :meth:`OnlineAdblocker.visit`
directly.

Scanning is cached by script digest, since in adblocker deployment the
same vendor script is encountered on many pages.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..filterlist.parser import FilterList
from ..web.adblocker import Adblocker
from ..web.dom import Document, parse_html
from ..web.page import PageSnapshot, Script
from .pipeline import AntiAdblockDetector


def source_digest(source: str) -> str:
    """The verdict-cache key of a script source (SHA-256 of its bytes).

    Shared with the serve daemon's batcher, whose prewarm pass fills the
    same cache with one batched ``predict`` before ``visit`` consults it.
    """
    return hashlib.sha256(source.encode("utf-8", "replace")).hexdigest()


@dataclass
class OnlineVisitResult:
    """Outcome of one ML-augmented page load."""

    url: str
    blocked_by_rules: List[str] = field(default_factory=list)
    blocked_by_model: List[str] = field(default_factory=list)
    flagged_inline: int = 0
    document: Optional[Document] = None

    @property
    def blocked_urls(self) -> List[str]:
        """All URLs blocked this visit, rule-based first."""
        return self.blocked_by_rules + self.blocked_by_model


class OnlineAdblocker:
    """Filter lists + the anti-adblock script detector, applied per page.

    ``visit`` mirrors what an instrumented browser extension would do:

    1. request-level filter rules run first (cheap, as in any adblocker);
    2. every script the page still loads is scanned by the model; flagged
       *external* scripts are blocked (their URL never fires), flagged
       *inline* scripts are reported (an extension would neutralise them
       in the DOM);
    3. element-hiding rules run over the resulting document.
    """

    def __init__(
        self,
        detector: AntiAdblockDetector,
        filter_lists: Optional[List[FilterList]] = None,
        adblocker: Optional[Adblocker] = None,
        verdict_cache: Optional[Dict[str, bool]] = None,
    ) -> None:
        self.detector = detector
        self.adblocker = adblocker if adblocker is not None else Adblocker(filter_lists or [])
        # The serve daemon passes a shared dict so memoised verdicts
        # survive epoch swaps; standalone use gets a private one.
        self._verdict_cache: Dict[str, bool] = (
            verdict_cache if verdict_cache is not None else {}
        )

    # -- script scanning -----------------------------------------------------

    def _verdict(self, source: str) -> bool:
        digest = source_digest(source)
        if digest not in self._verdict_cache:
            prediction = self.detector.predict([source])
            self._verdict_cache[digest] = bool(prediction[0])
        return self._verdict_cache[digest]

    def scan_scripts(self, scripts: List[Script]) -> List[Script]:
        """The scripts the model flags as anti-adblocking."""
        return [
            script
            for script in scripts
            if script.source and self._verdict(script.source)
        ]

    @property
    def cache_size(self) -> int:
        """Unique scripts scanned so far (verdicts are memoised)."""
        return len(self._verdict_cache)

    # -- page loads --------------------------------------------------------------

    def visit(self, snapshot: PageSnapshot) -> OnlineVisitResult:
        """Load a page: rule filtering, model scan, element hiding."""
        result = OnlineVisitResult(url=snapshot.url)

        # 1. Rule-based request filtering.
        rule_blocked = set()
        for resource in snapshot.subresources:
            if self.adblocker.should_block(
                resource.url,
                page_url=snapshot.url,
                resource_type=resource.resource_type or "script",
            ):
                rule_blocked.add(resource.url)
                result.blocked_by_rules.append(resource.url)

        # 2. Model scan over the scripts that survived rule filtering.
        survivors = [
            script
            for script in snapshot.scripts
            if not (script.url and script.url in rule_blocked)
        ]
        for script in self.scan_scripts(survivors):
            if script.url:
                result.blocked_by_model.append(script.url)
            else:
                result.flagged_inline += 1

        # 3. Element hiding on the rendered document.
        if snapshot.html:
            document = parse_html(snapshot.html)
            self.adblocker.hide_elements(document, snapshot.url)
            result.document = document
        return result

    def blocks_anti_adblocker(self, snapshot: PageSnapshot) -> bool:
        """Whether the page's anti-adblock machinery is neutralised.

        True when every ground-truth anti-adblock script on the page is
        either rule-blocked or model-blocked/flagged.
        """
        result = self.visit(snapshot)
        blocked = set(result.blocked_urls)
        for script in snapshot.anti_adblock_scripts():
            if script.url and script.url not in blocked:
                return False
            if not script.url and result.flagged_inline == 0:
                return False
        return True
