"""Automatic filter-rule generation from detector output.

The paper's §5 closing argument: the ML detector can *complement
crowdsourcing* — filter-list authors periodically crawl popular sites, run
the trained model over the scripts, and turn detections into candidate
filter rules (the offline scenario), or adblockers scan scripts on the fly
(the online scenario). This module implements the offline scenario's
missing half: turning detected scripts into syntactically valid
Adblock Plus rules, aggregated across sites so that a third-party vendor
seen on many sites yields one broad ``$third-party`` rule rather than
hundreds of per-site rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..filterlist.parser import FilterList, parse_filter_list
from ..filterlist.rules import NetworkRule
from ..web.page import PageSnapshot
from ..web.url import registered_domain, split_url
from .pipeline import AntiAdblockDetector


@dataclass
class DetectedScript:
    """One script the detector flagged, with its page context."""

    url: str
    page_domain: str
    source: str = ""


@dataclass
class GeneratedRules:
    """Candidate rules produced from a batch of detections."""

    rules: List[NetworkRule] = field(default_factory=list)
    #: rule raw text -> site domains supporting it
    evidence: Dict[str, List[str]] = field(default_factory=dict)

    def to_filter_list(self, name: str = "ml-generated") -> FilterList:
        """Materialise the candidate rules as a parsed FilterList."""
        text = "\n".join(rule.raw for rule in self.rules)
        return parse_filter_list(text, name=name)

    def __len__(self) -> int:
        return len(self.rules)


class RuleGenerator:
    """Aggregates detections into candidate Adblock Plus rules.

    - A script host seen as a *third party* on at least
      ``vendor_threshold`` distinct sites is treated as an anti-adblock
      vendor and yields one ``||host^$third-party`` rule.
    - Remaining (first-party or rare) detections yield per-site precision
      rules pinning the exact script path: ``||domain/path``.
    """

    def __init__(self, vendor_threshold: int = 3) -> None:
        self.vendor_threshold = vendor_threshold

    def generate(self, detections: Iterable[DetectedScript]) -> GeneratedRules:
        """Aggregate detections into vendor and per-site candidate rules."""
        by_host: Dict[str, List[DetectedScript]] = {}
        for detection in detections:
            if not detection.url:
                continue
            host_domain = registered_domain(detection.url)
            by_host.setdefault(host_domain, []).append(detection)

        result = GeneratedRules()
        for host_domain, host_detections in sorted(by_host.items()):
            third_party_sites = sorted(
                {
                    d.page_domain
                    for d in host_detections
                    if d.page_domain and registered_domain(d.page_domain) != host_domain
                }
            )
            if len(third_party_sites) >= self.vendor_threshold:
                raw = f"||{host_domain}^$third-party"
                result.rules.append(NetworkRule.parse(raw))
                result.evidence[raw] = third_party_sites
                continue
            for detection in host_detections:
                raw = self._precision_rule(detection)
                if raw is None or raw in result.evidence:
                    continue
                result.rules.append(NetworkRule.parse(raw))
                result.evidence[raw] = [detection.page_domain]
        return result

    @staticmethod
    def _precision_rule(detection: DetectedScript) -> Optional[str]:
        parts = split_url(detection.url)
        if not parts.host:
            return None
        path = parts.path if parts.path != "/" else ""
        return f"||{parts.host}{path}"


@dataclass
class PruneResult:
    """Outcome of a dead-rule prune over one filter list."""

    #: The surviving rules as a new list (document order preserved).
    pruned: FilterList
    kept: int
    dropped: int
    #: Raw lines of the dropped rules, in document order (deduplicated).
    dropped_rules: List[str] = field(default_factory=list)

    @property
    def dropped_fraction(self) -> float:
        total = self.kept + self.dropped
        return self.dropped / total if total else 0.0


def prune_dead_rules(
    filter_list: FilterList,
    hits: Dict[str, int],
    keep_exceptions: bool = False,
) -> PruneResult:
    """Drop rules that never fired, per the rule-stats hit accounting.

    ``hits`` maps raw rule lines to trigger counts (the
    :class:`~repro.analysis.rulestats.RuleStatsCollector` payload's
    ``hits`` section). Surviving rules keep their document order, so on
    the *observed* traffic the pruned list reproduces the full list's
    decisions exactly: any rule that ever won a match is a hit, hence
    kept, and candidate order within the token index is preserved.

    On *unobserved* traffic a pruned exception rule could change a
    decision; ``keep_exceptions=True`` keeps every ``@@``/``#@#`` rule
    regardless of hits for that conservative deployment.
    """
    kept_rules = []
    dropped_raws: List[str] = []
    seen_dropped = set()
    for parsed in filter_list.rules:
        raw = parsed.rule.raw
        if hits.get(raw, 0) > 0 or (keep_exceptions and parsed.rule.is_exception):
            kept_rules.append(parsed)
        elif raw not in seen_dropped:
            seen_dropped.add(raw)
            dropped_raws.append(raw)
    pruned = FilterList(
        name=f"{filter_list.name}-pruned" if filter_list.name else "pruned",
        rules=kept_rules,
        metadata=dict(filter_list.metadata),
    )
    return PruneResult(
        pruned=pruned,
        kept=len(kept_rules),
        dropped=len(filter_list.rules) - len(kept_rules),
        dropped_rules=dropped_raws,
    )


def detect_and_generate(
    detector: AntiAdblockDetector,
    pages: Sequence[PageSnapshot],
    vendor_threshold: int = 3,
) -> Tuple[GeneratedRules, List[DetectedScript]]:
    """The offline scenario end to end: scan pages, emit candidate rules.

    Only external scripts yield rules (inline scripts have no URL for an
    HTTP rule to match; they are reported as detections without rules).
    """
    detections: List[DetectedScript] = []
    scripts: List[Tuple[PageSnapshot, object]] = []
    sources: List[str] = []
    for page in pages:
        for script in page.scripts:
            if not script.source:
                continue
            scripts.append((page, script))
            sources.append(script.source)
    if not sources:
        return GeneratedRules(), []
    verdicts = detector.predict(sources)
    for (page, script), verdict in zip(scripts, verdicts):
        if verdict:
            detections.append(
                DetectedScript(
                    url=script.url, page_domain=page.domain, source=script.source
                )
            )
    generator = RuleGenerator(vendor_threshold=vendor_threshold)
    return generator.generate(detections), detections
