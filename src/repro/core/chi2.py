"""Chi-square feature scoring (Yang & Pedersen, as used in §5).

For each binary feature the paper computes

    χ² = N (AD − CB)² / ((A+C)(B+D)(A+B)(C+D))

where, over N scripts: A/B count positive/negative scripts containing the
feature and C/D count positive/negative scripts lacking it.
"""

from __future__ import annotations

import numpy as np


def chi_square_from_counts(
    a: np.ndarray,
    b: np.ndarray,
    positives: float,
    negatives: float,
    n_samples: int,
) -> np.ndarray:
    """χ² from per-feature contingency counts (the paper's A and B).

    ``a``/``b`` count positive/negative samples containing each feature;
    C and D follow from the class totals. This is the common core of the
    dense :func:`chi_square_scores` path and the bit-packed vectorizer
    (:mod:`~repro.core.vectorize`), which pops counts out of column
    bitmasks instead of materialising a matrix — both produce identical
    float64 scores because the arithmetic is identical.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = positives - a  # positive samples lacking the feature
    d = negatives - b  # negative samples lacking the feature
    numerator = n_samples * (a * d - c * b) ** 2
    denominator = (a + c) * (b + d) * (a + b) * (c + d)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(denominator > 0, numerator / denominator, 0.0)


def chi_square_scores(matrix: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """χ² score for every column of a binary sample×feature matrix.

    ``labels`` holds 1 for the positive (anti-adblock) class and 0 for the
    negative class. Degenerate features (present or absent everywhere, or
    a degenerate label vector) score 0.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D (samples x features)")
    if labels.shape[0] != matrix.shape[0]:
        raise ValueError("labels length must match the number of samples")

    n_samples = matrix.shape[0]
    positives = labels.sum()
    negatives = n_samples - positives

    a = labels @ matrix  # positive samples containing the feature
    b = matrix.sum(axis=0) - a  # negative samples containing the feature
    return chi_square_from_counts(a, b, positives, negatives, n_samples)


def top_k_features(matrix: np.ndarray, labels: np.ndarray, k: int) -> np.ndarray:
    """Column indices of the ``k`` highest-scoring features (descending)."""
    scores = chi_square_scores(matrix, labels)
    order = np.argsort(scores)[::-1]
    return order[:k]
