"""AdaBoost over weighted component classifiers (Freund & Schapire).

The paper boosts SVMs ("AdaBoost with SVM using RBF as its kernel tends to
perform better for imbalanced classification problems", after Li et al.).
This is discrete AdaBoost.M1: each round trains a component on the current
weight distribution, weights the component by its (weighted) error, and
up-weights misclassified samples.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from .svm import SVC


class DecisionStump:
    """A one-feature threshold classifier (classic AdaBoost weak learner).

    On binary features a stump is simply "predict 1 iff feature j is
    present (or absent)". Used by the ablation benchmarks to contrast the
    paper's SVM components with the textbook weak learner.
    """

    def __init__(self) -> None:
        self.feature_: int = 0
        self.polarity_: int = 1

    def fit(self, X: np.ndarray, y: np.ndarray, sample_weight: Optional[np.ndarray] = None) -> "DecisionStump":
        """Fit on binary-labeled data (optionally sample-weighted)."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y).ravel().astype(np.int8)
        n = X.shape[0]
        weights = (
            np.full(n, 1.0 / n)
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64) / np.sum(sample_weight)
        )
        # Weighted error of "predict = feature" per column, vectorised:
        # err_j = sum_i w_i * [x_ij != y_i].
        mismatch = X != y[:, None]
        errors = weights @ mismatch
        inverted_errors = 1.0 - errors
        best_direct = int(np.argmin(errors))
        best_inverted = int(np.argmin(inverted_errors))
        if errors[best_direct] <= inverted_errors[best_inverted]:
            self.feature_, self.polarity_ = best_direct, 1
        else:
            self.feature_, self.polarity_ = best_inverted, -1
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels in {0, 1}."""
        X = np.asarray(X, dtype=np.float64)
        values = X[:, self.feature_] > 0.5
        if self.polarity_ < 0:
            values = ~values
        return values.astype(np.int8)


class AdaBoostClassifier:
    """Discrete AdaBoost with pluggable weighted component classifiers.

    ``base_factory`` builds a fresh component per round; the component must
    expose ``fit(X, y, sample_weight=...)`` and ``predict(X) -> {0,1}``.
    """

    def __init__(
        self,
        base_factory: Optional[Callable[[], object]] = None,
        n_estimators: int = 10,
        learning_rate: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.base_factory = base_factory or (lambda: SVC(max_iter=100))
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.seed = seed
        self.estimators_: List[object] = []
        self.alphas_: List[float] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "AdaBoostClassifier":
        """Fit on binary-labeled data (optionally sample-weighted)."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y).ravel().astype(np.int8)
        n = X.shape[0]
        weights = np.full(n, 1.0 / n)
        self.estimators_ = []
        self.alphas_ = []
        for round_index in range(self.n_estimators):
            estimator = self.base_factory()
            estimator.fit(X, y, sample_weight=weights)
            predictions = np.asarray(estimator.predict(X)).ravel()
            missed = predictions != y
            error = float(weights[missed].sum())
            if error <= 1e-10:
                # Perfect component: it decides alone.
                self.estimators_.append(estimator)
                self.alphas_.append(1.0)
                break
            if error >= 0.5:
                # No better than chance under this distribution; stop
                # (keep at least one component so predict() works).
                if not self.estimators_:
                    self.estimators_.append(estimator)
                    self.alphas_.append(1.0)
                break
            alpha = self.learning_rate * 0.5 * np.log((1.0 - error) / error)
            self.estimators_.append(estimator)
            self.alphas_.append(float(alpha))
            signed = np.where(missed, 1.0, -1.0)
            weights = weights * np.exp(alpha * signed)
            weights = weights / weights.sum()
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed ensemble score; positive means anti-adblock."""
        if not self.estimators_:
            raise RuntimeError("AdaBoostClassifier.fit must run before inference")
        total = np.zeros(np.asarray(X).shape[0])
        for alpha, estimator in zip(self.alphas_, self.estimators_):
            signed = np.where(np.asarray(estimator.predict(X)).ravel() > 0, 1.0, -1.0)
            total += alpha * signed
        return total

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels in {0, 1}."""
        return (self.decision_function(X) > 0).astype(np.int8)

    @property
    def n_rounds(self) -> int:
        """Number of boosting rounds actually trained."""
        return len(self.estimators_)
