"""Labeled script corpus construction (§5, "Gathering Labeled Data").

The paper labels as positive the JavaScript snippets whose URLs matched
HTTP request rules of the crowdsourced anti-adblock filter lists during
the measurement study, uses the remaining scripts as negatives, and keeps
a ≈10:1 negative:positive imbalance.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..filterlist.matcher import NetworkMatcher
from ..obs.metrics import get_metrics
from ..obs.trace import emit_event
from ..obs.trace import span as trace_span
from ..resilience import ResiliencePolicy, default_resilience
from ..resilience.canonical import Interner
from ..web.page import PageSnapshot, Script
from ..web.url import registered_domain


@dataclass
class LabeledScript:
    """One corpus entry."""

    source: str
    label: int  # 1 = anti-adblock, 0 = benign
    url: str = ""
    site_domain: str = ""
    vendor: str = ""

    @property
    def digest(self) -> str:
        """SHA-256 of the script source (the de-duplication key)."""
        return hashlib.sha256(self.source.encode("utf-8", "replace")).hexdigest()


@dataclass
class Corpus:
    """A de-duplicated labeled corpus."""

    scripts: List[LabeledScript] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.scripts)

    @property
    def positives(self) -> List[LabeledScript]:
        """Scripts labeled anti-adblock."""
        return [script for script in self.scripts if script.label == 1]

    @property
    def negatives(self) -> List[LabeledScript]:
        """Scripts labeled benign."""
        return [script for script in self.scripts if script.label == 0]

    def sources(self) -> List[str]:
        """All script sources, positives first."""
        return [script.source for script in self.scripts]

    def labels(self) -> np.ndarray:
        """Label vector aligned with :meth:`sources`."""
        return np.array([script.label for script in self.scripts], dtype=np.int8)

    @property
    def imbalance(self) -> float:
        """Negative:positive ratio (the paper targets ~10:1)."""
        positives = len(self.positives)
        return len(self.negatives) / positives if positives else float("inf")


def build_corpus(
    pages: Iterable[PageSnapshot],
    matcher: NetworkMatcher,
    imbalance: float = 10.0,
    seed: int = 0,
    exclude_domains: Optional[Sequence[str]] = None,
    resilience: Optional[ResiliencePolicy] = None,
) -> Corpus:
    """Label every unique script on ``pages`` against the filter lists.

    A script is positive when its URL is *blocked* by an HTTP request rule
    (evaluated with the script's page as first-party context). Negatives
    are the remaining unique scripts, down-sampled to ``imbalance`` : 1.
    ``exclude_domains`` drops whole sites (the paper excludes the top-5K
    training sites when testing on the live crawl).

    With ``REPRO_CRAWL_JOURNAL`` set, each page's labeled entries
    checkpoint to the ``corpus`` journal; an interrupted build resumed
    over the same page stream reproduces the uninterrupted corpus.
    """
    resilience = resilience or default_resilience()
    excluded = {registered_domain(d) for d in (exclude_domains or [])}
    journal = resilience.journal(
        "corpus",
        {
            "imbalance": imbalance,
            "seed": seed,
            "excluded_sha": hashlib.sha256(
                "\n".join(sorted(excluded)).encode("utf-8")
            ).hexdigest()[:16],
        },
    )
    state = journal.load() if journal is not None else None
    positives: Dict[str, LabeledScript] = {}
    negatives: Dict[str, LabeledScript] = {}
    labeled = 0
    resumed = 0
    with trace_span("corpus:build") as span:
        for index, page in enumerate(pages):
            page_domain = page.domain
            if page_domain in excluded:
                continue
            span.count("pages")
            key = (str(index), page_domain)
            if state is not None and key in state:
                entries = state.take(key)
                resumed += 1
            else:
                entries = _label_page(page, page_domain, matcher)
                if journal is not None:
                    journal.append(key, entries)
            for entry in entries:
                labeled += 1
                if entry.label == 1:
                    positives.setdefault(entry.digest, entry)
                else:
                    negatives.setdefault(entry.digest, entry)
        # A script seen as positive anywhere is positive everywhere.
        for digest in list(negatives):
            if digest in positives:
                del negatives[digest]

        negative_list = list(negatives.values())
        positive_list = list(positives.values())
        target_negatives = int(round(imbalance * len(positive_list)))
        if positive_list and len(negative_list) > target_negatives:
            rng = np.random.default_rng(seed)
            indices = rng.choice(
                len(negative_list), size=target_negatives, replace=False
            )
            negative_list = [negative_list[int(i)] for i in sorted(indices)]
        span.set(
            scripts_labeled=labeled,
            positives=len(positive_list),
            negatives=len(negative_list),
        )
    if resumed:
        get_metrics().count("crawl.resumed_slots", resumed)
        emit_event("crawl_resume", scope="corpus", slots=resumed)
    if journal is not None:
        journal.mark_complete()
        journal.close()
        emit_event("journal_complete", scope="corpus", path=str(journal.path))
    # Intern entry strings so a journal-resumed corpus pickles
    # byte-identically to an uninterrupted build.
    interner = Interner()
    for entry in positive_list + negative_list:
        entry.source = interner.string(entry.source)
        entry.url = interner.string(entry.url)
        entry.site_domain = interner.string(entry.site_domain)
        entry.vendor = interner.string(entry.vendor)
    metrics = get_metrics()
    metrics.count("corpus.scripts_labeled", labeled)
    metrics.count("corpus.positives", len(positive_list))
    metrics.count("corpus.negatives", len(negative_list))
    return Corpus(scripts=positive_list + negative_list)


def _label_page(
    page: PageSnapshot, page_domain: str, matcher: NetworkMatcher
) -> List[LabeledScript]:
    """One page's labeled scripts (the corpus journal's unit of work)."""
    entries: List[LabeledScript] = []
    for script in page.scripts:
        entry = LabeledScript(
            source=script.source,
            label=0,
            url=script.url,
            site_domain=page_domain,
            vendor=script.vendor,
        )
        if _script_matches(script, page_domain, matcher):
            entry.label = 1
        entries.append(entry)
    return entries


def _script_matches(script: Script, page_domain: str, matcher: NetworkMatcher) -> bool:
    if not script.url:
        return False
    script_domain = registered_domain(script.url)
    third_party = bool(script_domain) and script_domain != page_domain
    return matcher.match(
        script.url,
        page_domain=page_domain,
        resource_type="script",
        third_party=third_party,
    ).blocked


def ground_truth_corpus(
    pages: Iterable[PageSnapshot],
    imbalance: float = 10.0,
    seed: int = 0,
) -> Corpus:
    """A corpus labeled by the world's ground truth rather than the lists.

    Used for ablations: the filter-list labelling (the paper's protocol)
    misses anti-adblock scripts the lists do not know about; comparing
    against ground truth quantifies that gap.
    """
    positives: Dict[str, LabeledScript] = {}
    negatives: Dict[str, LabeledScript] = {}
    for page in pages:
        for script in page.scripts:
            entry = LabeledScript(
                source=script.source,
                label=1 if script.is_anti_adblock else 0,
                url=script.url,
                site_domain=page.domain,
                vendor=script.vendor,
            )
            bucket = positives if entry.label else negatives
            bucket.setdefault(entry.digest, entry)
    for digest in list(negatives):
        if digest in positives:
            del negatives[digest]
    negative_list = list(negatives.values())
    positive_list = list(positives.values())
    target = int(round(imbalance * len(positive_list)))
    if positive_list and len(negative_list) > target:
        rng = np.random.default_rng(seed)
        indices = rng.choice(len(negative_list), size=target, replace=False)
        negative_list = [negative_list[int(i)] for i in sorted(indices)]
    return Corpus(scripts=positive_list + negative_list)
