"""Static AST feature extraction for anti-adblock detection (§5).

A feature is a ``context:text`` pair: *text* is a token drawn from the
script (identifier, literal, or keyword) and *context* is where it appears
— the AST node type that carries it, its parent node type, and the nearest
enclosing control structure (loop, if condition, try/catch, switch,
function). Three feature sets offer increasing generalisation:

- ``all``     — text from keywords, Web-API names, identifiers and literals;
- ``literal`` — text from literals only (no identifiers or keywords);
- ``keyword`` — text from native JavaScript keywords and JavaScript Web API
  names only (robust to identifier/literal randomisation, susceptible to
  polymorphism).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Set, Tuple

from ..jsast import nodes as N
from ..jsast.parser import ParseError, parse
from ..jsast.tokenizer import KEYWORDS, TokenizeError
from ..jsast.unpack import unpack_program
from ..jsast.walker import walk_with_ancestors

FEATURE_SETS = ("all", "literal", "keyword")

#: JavaScript Web API vocabulary. Identifiers on this list are *keyword*
#: text (they name platform objects/properties, not author-chosen names);
#: Table 2's ``Identifier:clientHeight`` feature is the canonical example.
WEB_API_KEYWORDS: FrozenSet[str] = frozenset(
    """window document navigator location screen history console
    createElement createTextNode createDocumentFragment getElementById
    getElementsByTagName getElementsByClassName querySelector
    querySelectorAll setAttribute getAttribute removeAttribute hasAttribute
    appendChild removeChild replaceChild insertBefore parentNode parentElement
    childNodes firstChild lastChild nextSibling previousSibling cloneNode
    innerHTML outerHTML textContent innerText
    offsetHeight offsetWidth offsetParent offsetLeft offsetTop
    clientHeight clientWidth clientLeft clientTop
    scrollHeight scrollWidth scrollTop scrollLeft
    getBoundingClientRect getComputedStyle currentStyle
    style display visibility opacity position zIndex className classList id
    body head documentElement cookie title referrer domain readyState
    addEventListener removeEventListener attachEvent detachEvent
    dispatchEvent onload onerror onclick onreadystatechange
    setTimeout setInterval clearTimeout clearInterval requestAnimationFrame
    XMLHttpRequest ActiveXObject fetch open send status responseText
    Image Audio Date Math JSON RegExp String Number Boolean Array Object
    Function eval parseInt parseFloat isNaN encodeURIComponent
    decodeURIComponent escape unescape
    getTime setTime toUTCString toGMTString getFullYear
    length push pop shift unshift splice slice concat join reverse sort
    indexOf lastIndexOf charAt charCodeAt fromCharCode substring substr
    split replace match search toLowerCase toUpperCase trim
    hasOwnProperty prototype constructor apply call bind arguments
    localStorage sessionStorage getItem setItem removeItem
    alert confirm prompt print focus blur close write writeln
    play pause load src async defer type value name checked
    undefined NaN Infinity""".split()
)

#: Control-structure contexts (the paper's "loop, try statement, catch
#: statement, if condition, switch condition, etc.").
_STRUCTURE_CONTEXT = {
    "ForStatement": "loop",
    "ForInStatement": "loop",
    "WhileStatement": "loop",
    "DoWhileStatement": "loop",
    "IfStatement": "if",
    "ConditionalExpression": "if",
    "TryStatement": "try",
    "CatchClause": "catch",
    "SwitchStatement": "switch",
    "FunctionDeclaration": "function",
    "FunctionExpression": "function",
}


def _text_kind(node: N.Node) -> Tuple[str, str]:
    """Classify a node's text: returns ``(kind, text)`` or ``("", "")``.

    ``kind`` is ``keyword`` (JS keywords / Web API names), ``identifier``
    (author-chosen names) or ``literal``.
    """
    if isinstance(node, N.Identifier):
        name = node.name
        if name in KEYWORDS or name in WEB_API_KEYWORDS:
            return "keyword", name
        return "identifier", name
    if isinstance(node, N.Literal):
        if node.regex is not None:
            return "literal", f"/{node.regex[0]}/"
        if node.value is None:
            return "keyword", "null"
        if isinstance(node.value, bool):
            return "keyword", "true" if node.value else "false"
        if isinstance(node.value, float):
            value = node.value
            return "literal", str(int(value)) if value == int(value) else str(value)
        return "literal", str(node.value)
    if isinstance(node, N.ThisExpression):
        return "keyword", "this"
    return "", ""


def _contexts(node: N.Node, ancestors: Tuple[N.Node, ...]) -> List[str]:
    """Contexts a text node appears in: own type, parent type, structure."""
    contexts = [node.type]
    if ancestors:
        contexts.append(ancestors[-1].type)
    for ancestor in reversed(ancestors):
        structure = _STRUCTURE_CONTEXT.get(ancestor.type)
        if structure is not None:
            contexts.append(structure)
            break
    else:
        contexts.append("toplevel")
    return contexts


_KIND_FILTER = {
    "all": ("keyword", "identifier", "literal"),
    "literal": ("literal",),
    "keyword": ("keyword",),
}

#: One text-bearing token occurrence: ``(kind, text, contexts)``. ``kind``
#: is ``keyword``/``identifier``/``literal``, ``text`` is truncated to 64
#: characters, and ``contexts`` are the node/parent/structure contexts the
#: token appears in. The event stream is feature-set-agnostic: every
#: feature set is a cheap kind-filter over it, so a script is parsed,
#: unpacked, and walked exactly once no matter how many sets are derived
#: (the contract the :mod:`~repro.core.featstore` engine caches on).
TokenEvent = Tuple[str, str, Tuple[str, ...]]


def token_events(program: N.Program) -> List[TokenEvent]:
    """One AST walk emitting every feature set's raw material.

    Truncates each text token to 64 characters so pathological literals
    (inline data blobs) do not mint unbounded vocabulary.
    """
    events: List[TokenEvent] = []
    for node, ancestors in walk_with_ancestors(program):
        kind, text = _text_kind(node)
        if not kind:
            continue
        events.append((kind, text[:64], tuple(_contexts(node, ancestors))))
    return events


def features_from_events(
    events: Iterable[TokenEvent], feature_set: str = "all"
) -> Set[str]:
    """Derive one feature set from a token event stream by kind-filtering."""
    if feature_set not in _KIND_FILTER:
        raise ValueError(f"unknown feature set {feature_set!r}; choose from {FEATURE_SETS}")
    allowed = _KIND_FILTER[feature_set]
    features: Set[str] = set()
    for kind, text, contexts in events:
        if kind not in allowed:
            continue
        for context in contexts:
            features.add(f"{context}:{text}")
    return features


def extract_features(program: N.Program, feature_set: str = "all") -> Set[str]:
    """The binary feature set of a parsed script."""
    return features_from_events(token_events(program), feature_set)


class FeatureExtractionError(ValueError):
    """Raised when a script cannot be parsed for feature extraction."""


def features_from_source(
    source: str, feature_set: str = "all", unpack: bool = True
) -> Set[str]:
    """Parse (and optionally unpack) JavaScript source, then extract.

    ``unpack=True`` reproduces the paper's V8-based handling of
    ``eval()``-packed scripts: features come from the unpacked body.
    """
    try:
        program = parse(source)
    except (ParseError, TokenizeError) as exc:
        raise FeatureExtractionError(str(exc)) from exc
    if unpack:
        program = unpack_program(program).program
    return extract_features(program, feature_set)


def features_for_corpus(
    sources: Iterable[str], feature_set: str = "all", unpack: bool = True
) -> List[Set[str]]:
    """Feature sets for many scripts; unparseable scripts yield empty sets.

    Delegates to the shared content-addressed feature store
    (:mod:`~repro.core.featstore`): each distinct script is parsed and
    unpacked at most once per ``unpack`` flag, extraction shards across
    ``REPRO_WORKERS`` processes, and per-script parse errors / unpack
    bailouts surface as ``features.*`` obs counters instead of silently
    becoming empty sets.
    """
    from .featstore import get_feature_store

    return get_feature_store().features_for_corpus(
        sources, feature_set=feature_set, unpack=unpack
    )
