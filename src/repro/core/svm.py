"""Support vector machine trained with (simplified) SMO.

scikit-learn is not available in this environment, so the paper's
component classifier is implemented from the primary sources: Platt's
sequential minimal optimisation in its simplified two-heuristic form, with
RBF (the paper's choice, after Li et al.) and linear kernels, per-sample
box constraints (used both for class balancing and as AdaBoost sample
weights), and a bias computed from the KKT conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np


def rbf_kernel(X: np.ndarray, Y: np.ndarray, gamma: float) -> np.ndarray:
    """The Gaussian kernel matrix K[i, j] = exp(-gamma ||x_i - y_j||²)."""
    x_sq = np.sum(X * X, axis=1)[:, None]
    y_sq = np.sum(Y * Y, axis=1)[None, :]
    distances = x_sq + y_sq - 2.0 * (X @ Y.T)
    np.maximum(distances, 0.0, out=distances)
    return np.exp(-gamma * distances)


def linear_kernel(X: np.ndarray, Y: np.ndarray, gamma: float = 0.0) -> np.ndarray:
    """The plain dot-product kernel matrix X @ Y.T."""
    return X @ Y.T


_KERNELS = {"rbf": rbf_kernel, "linear": linear_kernel}


@dataclass
class SVCConfig:
    """Hyper-parameters for :class:`SVC`."""

    C: float = 1.0
    kernel: str = "rbf"
    gamma: Union[str, float] = "scale"
    tol: float = 1e-3
    max_passes: int = 3
    max_iter: int = 2000
    class_weight: Optional[str] = "balanced"
    seed: int = 0


class SVC:
    """Binary kernel SVM.

    Labels may be given as {0, 1} or {-1, +1}; internally {-1, +1} is
    used. ``sample_weight`` scales each sample's box constraint, which is
    how AdaBoost reweights the training set between rounds.
    """

    def __init__(self, **kwargs) -> None:
        self.config = SVCConfig(**kwargs)
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._b: float = 0.0
        self._gamma: float = 1.0

    # -- helpers ----------------------------------------------------------------

    def _resolve_gamma(self, X: np.ndarray) -> float:
        gamma = self.config.gamma
        n_features = max(X.shape[1], 1)  # zero-feature inputs degenerate safely
        if gamma == "scale":
            variance = X.var() if X.size else 0.0
            return 1.0 / (n_features * variance) if variance > 0 else 1.0 / n_features
        if gamma == "auto":
            return 1.0 / n_features
        return float(gamma)

    def _kernel(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        try:
            kernel_fn = _KERNELS[self.config.kernel]
        except KeyError:
            raise ValueError(f"unknown kernel {self.config.kernel!r}") from None
        return kernel_fn(X, Y, self._gamma)

    @staticmethod
    def _to_signed(y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=np.float64).ravel()
        unique = np.unique(y)
        if set(unique).issubset({0.0, 1.0}):
            return np.where(y > 0, 1.0, -1.0)
        if set(unique).issubset({-1.0, 1.0}):
            return y
        raise ValueError("labels must be in {0,1} or {-1,+1}")

    # -- training ------------------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "SVC":
        """Train with simplified SMO; supports per-sample weights."""
        X = np.asarray(X, dtype=np.float64)
        y = self._to_signed(y)
        n = X.shape[0]
        if n == 0:
            raise ValueError("empty training set")
        config = self.config
        self._gamma = self._resolve_gamma(X)

        box = np.full(n, config.C, dtype=np.float64)
        if config.class_weight == "balanced":
            n_pos = max(int((y > 0).sum()), 1)
            n_neg = max(int((y < 0).sum()), 1)
            box[y > 0] *= n / (2.0 * n_pos)
            box[y < 0] *= n / (2.0 * n_neg)
        if sample_weight is not None:
            weights = np.asarray(sample_weight, dtype=np.float64).ravel()
            total = weights.sum()
            if total <= 0:
                raise ValueError("sample weights must sum to a positive value")
            box = box * (weights * n / total)

        K = self._kernel(X, X)
        b = 0.0
        # Error cache: errors[i] = f(x_i) - y_i, updated incrementally
        # after every alpha step (the standard SMO optimisation).
        errors = -y.astype(np.float64).copy()
        rng = np.random.default_rng(config.seed)
        # The per-violator work is scalar: Python floats (the same IEEE
        # doubles numpy holds) via plain lists sidestep per-element numpy
        # indexing, which dominated this loop's runtime. Partner indices
        # come from a prefetched batch of draws consumed one at a time,
        # and only *after* a violator passes the live KKT re-check, so
        # the draw order matches picking a partner on demand per
        # optimised violator. numpy's batched integers() emits the same
        # stream as repeated scalar calls with the same bounds, so the
        # fitted alphas are bit-identical to the scalar-draw loop.
        partner_queue: list = []
        partner_next = 0
        tol = config.tol
        y_list = y.tolist()
        box_list = box.tolist()
        diag = K.diagonal().tolist()
        alpha = [0.0] * n
        passes = 0
        iterations = 0
        while passes < config.max_passes and iterations < config.max_iter:
            iterations += 1
            changed = 0
            # Vectorised KKT screen: only samples violating the conditions
            # at the start of the pass are visited (each is re-checked
            # against the live error cache before optimisation).
            alpha_arr = np.asarray(alpha)
            margins = y * errors
            violators = np.flatnonzero(
                ((margins < -tol) & (alpha_arr < box))
                | ((margins > tol) & (alpha_arr > 0))
            )
            if violators.size == 0:
                passes += 1
                continue
            for i in violators.tolist():
                error_i = float(errors[i])
                y_i = y_list[i]
                alpha_i_old = alpha[i]
                box_i = box_list[i]
                if not (
                    (y_i * error_i < -tol and alpha_i_old < box_i)
                    or (y_i * error_i > tol and alpha_i_old > 0)
                ):
                    continue
                if partner_next >= len(partner_queue):
                    partner_queue = rng.integers(
                        0, n - 1, size=max(violators.size, 1)
                    ).tolist()
                    partner_next = 0
                j = partner_queue[partner_next]
                partner_next += 1
                if j >= i:
                    j += 1
                error_j = float(errors[j])
                y_j = y_list[j]
                alpha_j_old = alpha[j]
                box_j = box_list[j]
                if y_i != y_j:
                    low = max(0.0, alpha_j_old - alpha_i_old)
                    high = min(box_j, box_i + alpha_j_old - alpha_i_old)
                else:
                    low = max(0.0, alpha_i_old + alpha_j_old - box_i)
                    high = min(box_j, alpha_i_old + alpha_j_old)
                if low >= high:
                    continue
                k_ij = float(K[i, j])
                eta = 2.0 * k_ij - diag[i] - diag[j]
                if eta >= 0:
                    continue
                alpha_j = alpha_j_old - y_j * (error_i - error_j) / eta
                alpha_j = min(max(alpha_j, low), high)
                alpha[j] = alpha_j
                if abs(alpha_j - alpha_j_old) < 1e-7:
                    continue
                alpha_i = alpha_i_old + y_i * y_j * (alpha_j_old - alpha_j)
                alpha[i] = alpha_i
                delta_i = alpha_i - alpha_i_old
                delta_j = alpha_j - alpha_j_old
                b1 = b - error_i - y_i * delta_i * diag[i] - y_j * delta_j * k_ij
                b2 = b - error_j - y_i * delta_i * k_ij - y_j * delta_j * diag[j]
                if 0 < alpha_i < box_i:
                    new_b = b1
                elif 0 < alpha_j < box_j:
                    new_b = b2
                else:
                    new_b = (b1 + b2) / 2.0
                errors += (
                    y_i * delta_i * K[i, :]
                    + y_j * delta_j * K[j, :]
                    + (new_b - b)
                )
                b = new_b
                changed += 1
            passes = passes + 1 if changed == 0 else 0

        alpha = np.asarray(alpha)
        support = alpha > 1e-8
        self._X = X[support]
        self._y = y[support]
        self._alpha = alpha[support]
        self._b = b
        if self._X.shape[0] == 0:
            # Degenerate fit (e.g. single-class data): predict the majority.
            majority = 1.0 if (y > 0).sum() >= (y < 0).sum() else -1.0
            self._X = X[:1]
            self._y = np.array([majority])
            self._alpha = np.array([0.0])
            self._b = majority
        return self

    # -- inference ---------------------------------------------------------------

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed distance to the separating surface."""
        if self._X is None:
            raise RuntimeError("SVC.fit must run before inference")
        X = np.asarray(X, dtype=np.float64)
        K = self._kernel(self._X, X)
        return (self._alpha * self._y) @ K + self._b

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels in {0, 1}."""
        return (self.decision_function(X) > 0).astype(np.int8)

    @property
    def n_support(self) -> int:
        """Number of support vectors retained after training."""
        return 0 if self._X is None else int(self._X.shape[0])
