"""Support vector machine trained with (simplified) SMO.

scikit-learn is not available in this environment, so the paper's
component classifier is implemented from the primary sources: Platt's
sequential minimal optimisation in its simplified two-heuristic form, with
RBF (the paper's choice, after Li et al.) and linear kernels, per-sample
box constraints (used both for class balancing and as AdaBoost sample
weights), and a bias computed from the KKT conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np


def rbf_kernel(X: np.ndarray, Y: np.ndarray, gamma: float) -> np.ndarray:
    """The Gaussian kernel matrix K[i, j] = exp(-gamma ||x_i - y_j||²)."""
    x_sq = np.sum(X * X, axis=1)[:, None]
    y_sq = np.sum(Y * Y, axis=1)[None, :]
    distances = x_sq + y_sq - 2.0 * (X @ Y.T)
    np.maximum(distances, 0.0, out=distances)
    return np.exp(-gamma * distances)


def linear_kernel(X: np.ndarray, Y: np.ndarray, gamma: float = 0.0) -> np.ndarray:
    """The plain dot-product kernel matrix X @ Y.T."""
    return X @ Y.T


_KERNELS = {"rbf": rbf_kernel, "linear": linear_kernel}


@dataclass
class SVCConfig:
    """Hyper-parameters for :class:`SVC`."""

    C: float = 1.0
    kernel: str = "rbf"
    gamma: Union[str, float] = "scale"
    tol: float = 1e-3
    max_passes: int = 3
    max_iter: int = 2000
    class_weight: Optional[str] = "balanced"
    seed: int = 0


class SVC:
    """Binary kernel SVM.

    Labels may be given as {0, 1} or {-1, +1}; internally {-1, +1} is
    used. ``sample_weight`` scales each sample's box constraint, which is
    how AdaBoost reweights the training set between rounds.
    """

    def __init__(self, **kwargs) -> None:
        self.config = SVCConfig(**kwargs)
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._b: float = 0.0
        self._gamma: float = 1.0

    # -- helpers ----------------------------------------------------------------

    def _resolve_gamma(self, X: np.ndarray) -> float:
        gamma = self.config.gamma
        n_features = max(X.shape[1], 1)  # zero-feature inputs degenerate safely
        if gamma == "scale":
            variance = X.var() if X.size else 0.0
            return 1.0 / (n_features * variance) if variance > 0 else 1.0 / n_features
        if gamma == "auto":
            return 1.0 / n_features
        return float(gamma)

    def _kernel(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        try:
            kernel_fn = _KERNELS[self.config.kernel]
        except KeyError:
            raise ValueError(f"unknown kernel {self.config.kernel!r}") from None
        return kernel_fn(X, Y, self._gamma)

    @staticmethod
    def _to_signed(y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=np.float64).ravel()
        unique = np.unique(y)
        if set(unique).issubset({0.0, 1.0}):
            return np.where(y > 0, 1.0, -1.0)
        if set(unique).issubset({-1.0, 1.0}):
            return y
        raise ValueError("labels must be in {0,1} or {-1,+1}")

    # -- training ------------------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "SVC":
        """Train with simplified SMO; supports per-sample weights."""
        X = np.asarray(X, dtype=np.float64)
        y = self._to_signed(y)
        n = X.shape[0]
        if n == 0:
            raise ValueError("empty training set")
        config = self.config
        self._gamma = self._resolve_gamma(X)

        box = np.full(n, config.C, dtype=np.float64)
        if config.class_weight == "balanced":
            n_pos = max(int((y > 0).sum()), 1)
            n_neg = max(int((y < 0).sum()), 1)
            box[y > 0] *= n / (2.0 * n_pos)
            box[y < 0] *= n / (2.0 * n_neg)
        if sample_weight is not None:
            weights = np.asarray(sample_weight, dtype=np.float64).ravel()
            total = weights.sum()
            if total <= 0:
                raise ValueError("sample weights must sum to a positive value")
            box = box * (weights * n / total)

        K = self._kernel(X, X)
        alpha = np.zeros(n)
        b = 0.0
        # Error cache: errors[i] = f(x_i) - y_i, updated incrementally
        # after every alpha step (the standard SMO optimisation).
        errors = -y.astype(np.float64).copy()
        rng = np.random.default_rng(config.seed)
        passes = 0
        iterations = 0
        while passes < config.max_passes and iterations < config.max_iter:
            iterations += 1
            changed = 0
            # Vectorised KKT screen: only samples violating the conditions
            # at the start of the pass are visited (each is re-checked
            # against the live error cache before optimisation).
            margins = y * errors
            violators = np.flatnonzero(
                ((margins < -config.tol) & (alpha < box))
                | ((margins > config.tol) & (alpha > 0))
            )
            for i in violators:
                i = int(i)
                error_i = errors[i]
                if not (
                    (y[i] * error_i < -config.tol and alpha[i] < box[i])
                    or (y[i] * error_i > config.tol and alpha[i] > 0)
                ):
                    continue
                j = int(rng.integers(0, n - 1))
                if j >= i:
                    j += 1
                error_j = errors[j]
                alpha_i_old, alpha_j_old = alpha[i], alpha[j]
                if y[i] != y[j]:
                    low = max(0.0, alpha[j] - alpha[i])
                    high = min(box[j], box[i] + alpha[j] - alpha[i])
                else:
                    low = max(0.0, alpha[i] + alpha[j] - box[i])
                    high = min(box[j], alpha[i] + alpha[j])
                if low >= high:
                    continue
                eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                if eta >= 0:
                    continue
                alpha[j] = alpha_j_old - y[j] * (error_i - error_j) / eta
                alpha[j] = min(max(alpha[j], low), high)
                if abs(alpha[j] - alpha_j_old) < 1e-7:
                    continue
                alpha[i] = alpha_i_old + y[i] * y[j] * (alpha_j_old - alpha[j])
                delta_i = alpha[i] - alpha_i_old
                delta_j = alpha[j] - alpha_j_old
                b1 = b - error_i - y[i] * delta_i * K[i, i] - y[j] * delta_j * K[i, j]
                b2 = b - error_j - y[i] * delta_i * K[i, j] - y[j] * delta_j * K[j, j]
                if 0 < alpha[i] < box[i]:
                    new_b = b1
                elif 0 < alpha[j] < box[j]:
                    new_b = b2
                else:
                    new_b = (b1 + b2) / 2.0
                errors += (
                    y[i] * delta_i * K[i, :]
                    + y[j] * delta_j * K[j, :]
                    + (new_b - b)
                )
                b = new_b
                changed += 1
            passes = passes + 1 if changed == 0 else 0

        support = alpha > 1e-8
        self._X = X[support]
        self._y = y[support]
        self._alpha = alpha[support]
        self._b = b
        if self._X.shape[0] == 0:
            # Degenerate fit (e.g. single-class data): predict the majority.
            majority = 1.0 if (y > 0).sum() >= (y < 0).sum() else -1.0
            self._X = X[:1]
            self._y = np.array([majority])
            self._alpha = np.array([0.0])
            self._b = majority
        return self

    # -- inference ---------------------------------------------------------------

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed distance to the separating surface."""
        if self._X is None:
            raise RuntimeError("SVC.fit must run before inference")
        X = np.asarray(X, dtype=np.float64)
        K = self._kernel(self._X, X)
        return (self._alpha * self._y) @ K + self._b

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels in {0, 1}."""
        return (self.decision_function(X) > 0).astype(np.int8)

    @property
    def n_support(self) -> int:
        """Number of support vectors retained after training."""
        return 0 if self._X is None else int(self._X.shape[0])
