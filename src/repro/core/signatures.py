"""Signature-based anti-adblock detection — the manual baseline.

The paper's related work (§2.2) contrasts its ML detector with Storey et
al.'s *active adblocking*, which removes anti-adblock scripts using
manually crafted regular expressions. This module implements that
baseline: a curated signature set over raw script text, matching the
idioms anti-adblockers used circa 2016.

The comparison the ablation benchmark draws: signatures are precise on
the exact idioms they encode but brittle — identifier randomisation
already dodges name-based signatures, and second-generation scripts
(MutationObserver baits, XHR probes) walk straight past them, whereas the
AST-feature classifier degrades gracefully.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Pattern, Sequence

import numpy as np


@dataclass(frozen=True)
class Signature:
    """One handcrafted detection signature."""

    name: str
    pattern: Pattern
    weight: int = 1

    def matches(self, source: str) -> bool:
        """Whether this signature's regex fires on the source text."""
        return self.pattern.search(source) is not None


def _sig(name: str, regex: str, weight: int = 1) -> Signature:
    return Signature(name=name, pattern=re.compile(regex, re.IGNORECASE), weight=weight)


#: The baseline signature set. Weights let weak indicators (generic ad
#: vocabulary) combine while strong indicators fire alone.
DEFAULT_SIGNATURES: Sequence[Signature] = (
    # Vendor and library names.
    _sig("blockadblock-name", r"BlockAdBlock|FuckAdBlock", weight=3),
    _sig("bab-methods", r"_creatBait|_checkBait|emitEvent\(", weight=3),
    # The classic layout-probe conditions.
    _sig("offset-zero-check", r"offset(Height|Width|Parent)\s*===?\s*(0|null)", weight=3),
    _sig("client-zero-check", r"client(Height|Width)\s*===?\s*0", weight=2),
    # Bait element vocabulary.
    _sig("bait-classnames", r"pub_300x250|adsbox|ad-placement|text-ad\b", weight=2),
    # Bait request + error-handler pattern.
    _sig(
        "bait-request",
        r"onerror[\"']?\s*[,=:].{0,80}(adblock|abp|bait)",
        weight=3,
    ),
    _sig(
        "ads-js-bait",
        r"['\"][^'\"]*/(ads|advertising|show_ads|adsbygoogle|adframe|squelch-ads|ads-loader)\.js",
        weight=1,
    ),
    # Dynamically injected probe script with an error handler attribute.
    _sig("script-onerror-attr", r"setAttribute\(\s*[\"']onerror", weight=2),
    # Tell-tale globals and cookies (enumerated from observed deployments).
    _sig("canrunads", r"canRunAds|adsAllowed|adsOk\b|canShowAds", weight=3),
    _sig(
        "adblock-cookie",
        r"__adblocker|abp_detected|adblock_state|adblockDetected|__adb\b|_abd\b|ab_status|blocker_status",
        weight=3,
    ),
    _sig("adblock-word", r"ad[\s_-]?block", weight=1),
    # Nag-notice vocabulary.
    _sig("disable-nag", r"disable (your )?ad ?blocker|whitelist (us|this site)", weight=3),
)

#: Score at or above which a script is flagged.
DEFAULT_THRESHOLD = 3


@dataclass
class SignatureDetector:
    """Flag scripts whose signature-weight sum reaches the threshold.

    API-compatible with :class:`~repro.core.pipeline.AntiAdblockDetector`'s
    inference surface (``predict``), so it drops into the same harnesses.
    """

    signatures: Sequence[Signature] = field(default_factory=lambda: list(DEFAULT_SIGNATURES))
    threshold: int = DEFAULT_THRESHOLD

    def score(self, source: str) -> int:
        """Sum of weights of all matching signatures."""
        return sum(s.weight for s in self.signatures if s.matches(source))

    def matched_signatures(self, source: str) -> List[str]:
        """Names of the signatures that fire on the source."""
        return [s.name for s in self.signatures if s.matches(source)]

    def predict(self, sources: Sequence[str]) -> np.ndarray:
        """Flag each source whose score reaches the threshold."""
        return np.array(
            [1 if self.score(source) >= self.threshold else 0 for source in sources],
            dtype=np.int8,
        )

    def fit(self, sources: Sequence[str], labels: Sequence[int]) -> "SignatureDetector":
        """No-op: signatures are handcrafted, not learned (that is the point)."""
        return self
