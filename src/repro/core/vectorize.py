"""Feature-space construction: binary vectorization and filtering (§5).

Implements the paper's mapping function φ (scripts → binary vectors over
the feature vocabulary) and its three-stage feature filter: drop features
with variance below 0.01, drop duplicate features (identical columns),
then rank the remainder by chi-square and keep the top K.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from .chi2 import chi_square_scores


@dataclass
class FeatureSpace:
    """A fitted binary feature space.

    ``vocabulary`` maps feature string → column index. ``transform``
    produces dense uint8 matrices (the post-filter vocabulary is small
    enough that dense is both simpler and faster than sparse here).
    """

    vocabulary: Dict[str, int] = field(default_factory=dict)

    @property
    def n_features(self) -> int:
        """Size of the fitted vocabulary."""
        return len(self.vocabulary)

    @property
    def feature_names(self) -> List[str]:
        """Feature strings in column order."""
        names = [""] * len(self.vocabulary)
        for name, index in self.vocabulary.items():
            names[index] = name
        return names

    def transform(self, feature_sets: Sequence[Set[str]]) -> np.ndarray:
        """Map scripts (as feature sets) into the binary vector space."""
        matrix = np.zeros((len(feature_sets), len(self.vocabulary)), dtype=np.uint8)
        for row, features in enumerate(feature_sets):
            for feature in features:
                column = self.vocabulary.get(feature)
                if column is not None:
                    matrix[row, column] = 1
        return matrix


@dataclass
class VectorizerReport:
    """Feature counts after each filtering stage (the §5 numbers)."""

    extracted: int = 0
    after_variance: int = 0
    after_duplicates: int = 0
    selected: int = 0


class Vectorizer:
    """Fits the feature space with the paper's three filters."""

    def __init__(
        self,
        variance_threshold: float = 0.01,
        top_k: Optional[int] = 1000,
    ) -> None:
        self.variance_threshold = variance_threshold
        self.top_k = top_k
        self.space: Optional[FeatureSpace] = None
        self.report = VectorizerReport()

    def fit(
        self, feature_sets: Sequence[Set[str]], labels: Sequence[int]
    ) -> FeatureSpace:
        """Fit the vocabulary on a labeled corpus and return the space."""
        labels = np.asarray(labels, dtype=np.int8)
        vocabulary: Dict[str, int] = {}
        for features in feature_sets:
            for feature in features:
                if feature not in vocabulary:
                    vocabulary[feature] = len(vocabulary)
        self.report.extracted = len(vocabulary)

        full_space = FeatureSpace(vocabulary=vocabulary)
        matrix = full_space.transform(feature_sets)
        names = np.array(full_space.feature_names, dtype=object)

        # 1. Variance filter: binary column variance is p(1-p).
        presence = matrix.mean(axis=0)
        variance = presence * (1.0 - presence)
        keep = variance >= self.variance_threshold
        matrix = matrix[:, keep]
        names = names[keep]
        self.report.after_variance = matrix.shape[1]

        # 2. Duplicate columns: identical presence patterns carry the same
        #    information; keep the first of each group.
        matrix, names = _drop_duplicate_columns(matrix, names)
        self.report.after_duplicates = matrix.shape[1]

        # 3. Chi-square ranking, keep the top K.
        if self.top_k is not None and matrix.shape[1] > self.top_k:
            scores = chi_square_scores(matrix, labels)
            order = np.argsort(scores)[::-1][: self.top_k]
            order = np.sort(order)
            matrix = matrix[:, order]
            names = names[order]
        self.report.selected = matrix.shape[1]

        self.space = FeatureSpace(
            vocabulary={name: index for index, name in enumerate(names)}
        )
        return self.space

    def fit_transform(
        self, feature_sets: Sequence[Set[str]], labels: Sequence[int]
    ) -> np.ndarray:
        """Fit the vocabulary and return the training matrix."""
        space = self.fit(feature_sets, labels)
        return space.transform(feature_sets)

    def transform(self, feature_sets: Sequence[Set[str]]) -> np.ndarray:
        """Map feature sets into the fitted space (unknowns ignored)."""
        if self.space is None:
            raise RuntimeError("Vectorizer.fit must run before transform")
        return self.space.transform(feature_sets)


def _drop_duplicate_columns(matrix: np.ndarray, names: np.ndarray):
    """Remove columns with identical 0/1 patterns (keep first occurrence)."""
    if matrix.shape[1] == 0:
        return matrix, names
    seen: Dict[bytes, int] = {}
    keep_indices: List[int] = []
    for column in range(matrix.shape[1]):
        key = matrix[:, column].tobytes()
        if key not in seen:
            seen[key] = column
            keep_indices.append(column)
    keep = np.array(keep_indices, dtype=int)
    return matrix[:, keep], names[keep]
