"""Feature-space construction: binary vectorization and filtering (§5).

Implements the paper's mapping function φ (scripts → binary vectors over
the feature vocabulary) and its three-stage feature filter: drop features
with variance below 0.01, drop duplicate features (identical columns),
then rank the remainder by chi-square and keep the top K.

The pre-filter stages never materialise the full samples×vocabulary
matrix. A raw *all*-features vocabulary runs to tens of thousands of
columns, almost all of which the variance filter discards — a dense
uint8 matrix there is O(samples × vocabulary) memory for one mean per
column. Instead each candidate feature is a **bit-packed column**: one
arbitrary-precision int whose bit *i* is sample *i*'s presence. Presence
counts are ``int.bit_count()``, the variance filter is ``p(1-p)`` on
``count/n``, duplicate columns collapse by mask equality, and the χ²
contingency counts come from popcounts against the positive-class mask —
all identical float64 arithmetic to the dense formulation (same sums,
same divisions), so the selected vocabulary is exactly the same. Only
the post-filter space (≤ top-K columns) is ever dense.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from .chi2 import chi_square_from_counts


@dataclass
class FeatureSpace:
    """A fitted binary feature space.

    ``vocabulary`` maps feature string → column index. ``transform``
    produces dense uint8 matrices (the post-filter vocabulary is small
    enough that dense is both simpler and faster than sparse here).
    """

    vocabulary: Dict[str, int] = field(default_factory=dict)

    @property
    def n_features(self) -> int:
        """Size of the fitted vocabulary."""
        return len(self.vocabulary)

    @property
    def feature_names(self) -> List[str]:
        """Feature strings in column order."""
        names = [""] * len(self.vocabulary)
        for name, index in self.vocabulary.items():
            names[index] = name
        return names

    def transform(self, feature_sets: Sequence[Set[str]]) -> np.ndarray:
        """Map scripts (as feature sets) into the binary vector space."""
        matrix = np.zeros((len(feature_sets), len(self.vocabulary)), dtype=np.uint8)
        for row, features in enumerate(feature_sets):
            for feature in features:
                column = self.vocabulary.get(feature)
                if column is not None:
                    matrix[row, column] = 1
        return matrix


@dataclass
class VectorizerReport:
    """Feature counts after each filtering stage (the §5 numbers)."""

    extracted: int = 0
    after_variance: int = 0
    after_duplicates: int = 0
    selected: int = 0


class Vectorizer:
    """Fits the feature space with the paper's three filters."""

    def __init__(
        self,
        variance_threshold: float = 0.01,
        top_k: Optional[int] = 1000,
    ) -> None:
        self.variance_threshold = variance_threshold
        self.top_k = top_k
        self.space: Optional[FeatureSpace] = None
        self.report = VectorizerReport()

    def fit(
        self, feature_sets: Sequence[Set[str]], labels: Sequence[int]
    ) -> FeatureSpace:
        """Fit the vocabulary on a labeled corpus and return the space."""
        labels = np.asarray(labels, dtype=np.int8)
        n_samples = len(feature_sets)

        # Bit-packed columns: masks[feature] has bit i set iff sample i
        # contains the feature. No dense pre-filter matrix is ever built.
        masks: Dict[str, int] = {}
        for row, features in enumerate(feature_sets):
            bit = 1 << row
            for feature in features:
                masks[feature] = masks.get(feature, 0) | bit
        self.report.extracted = len(masks)

        # Column order is sorted-by-name, not set-iteration order: hash
        # randomisation must not leak into tie-breaks (duplicate groups,
        # equal χ² scores), or repeated runs select different spaces.
        names = sorted(masks)

        # 1. Variance filter: binary column variance is p(1-p).
        kept: List[str] = []
        for name in names:
            p = masks[name].bit_count() / n_samples
            if p * (1.0 - p) >= self.variance_threshold:
                kept.append(name)
        self.report.after_variance = len(kept)

        # 2. Duplicate columns: identical presence patterns carry the same
        #    information; keep the first of each group.
        seen_masks: Set[int] = set()
        unique: List[str] = []
        for name in kept:
            mask = masks[name]
            if mask not in seen_masks:
                seen_masks.add(mask)
                unique.append(name)
        self.report.after_duplicates = len(unique)

        # 3. Chi-square ranking, keep the top K. Contingency counts are
        #    popcounts against the positive-class mask — float64-identical
        #    to the dense labels@matrix formulation.
        selected = unique
        if self.top_k is not None and len(unique) > self.top_k:
            positive_mask = 0
            for row, label in enumerate(labels):
                if label:
                    positive_mask |= 1 << row
            positives = float(positive_mask.bit_count())
            negatives = n_samples - positives
            a = np.array(
                [(masks[name] & positive_mask).bit_count() for name in unique],
                dtype=np.float64,
            )
            totals = np.array(
                [masks[name].bit_count() for name in unique], dtype=np.float64
            )
            scores = chi_square_from_counts(a, totals - a, positives, negatives, n_samples)
            order = np.argsort(scores)[::-1][: self.top_k]
            order = np.sort(order)
            selected = [unique[index] for index in order]
        self.report.selected = len(selected)

        self.space = FeatureSpace(
            vocabulary={name: index for index, name in enumerate(selected)}
        )
        return self.space

    def fit_transform(
        self, feature_sets: Sequence[Set[str]], labels: Sequence[int]
    ) -> np.ndarray:
        """Fit the vocabulary and return the training matrix."""
        space = self.fit(feature_sets, labels)
        return space.transform(feature_sets)

    def transform(self, feature_sets: Sequence[Set[str]]) -> np.ndarray:
        """Map feature sets into the fitted space (unknowns ignored)."""
        if self.space is None:
            raise RuntimeError("Vectorizer.fit must run before transform")
        return self.space.transform(feature_sets)
